//! FT-Search (§4.5): a constraint-programming-style branch-and-bound solver
//! for the LAAR replica-activation optimization problem (eqs. 9–12).
//!
//! FT-Search explores the tree of PE activation states per input
//! configuration (domain `{OnlyR0, OnlyR1, Both}`, i.e. `3^(|P|·|C|)` leaves
//! for two-fold replication) depth-first with backtracking, cutting branches
//! with four pruning strategies:
//!
//! 1. **CPU** — the partial assignment already overloads some host (eq. 11);
//! 2. **COMPL** — an upper bound on the achievable IC falls below the SLA
//!    goal (eq. 10);
//! 3. **COST** — a lower bound on the achievable cost is no better than the
//!    incumbent solution;
//! 4. **DOM** — forward domain propagation: when every predecessor of a PE
//!    is single-replicated in a configuration, full replication of that PE
//!    cannot improve IC, so `Both` is removed from its domain ("no
//!    replication forwarding").
//!
//! The search runs under a wall-clock limit (the paper used 10 minutes) and
//! classifies its result as the paper does in Fig. 4: `BST` (proved optimal),
//! `SOL` (feasible, possibly suboptimal), `NUL` (proved infeasible), or
//! `TMO` (timed out with nothing).
//!
//! [`solve`] is the sequential solver; [`solve_parallel`] fans the search out
//! over OS threads. Two parallel modes exist (see [`SearchMode`]):
//!
//! - [`SearchMode::Deterministic`] splits the top of the tree statically with
//!   a shared incumbent (the paper used the JSR-166 Fork/Join framework) and
//!   is **deterministic in its incumbent**: identical (assignment, cost, FIC)
//!   for any thread count, because near-incumbent subtrees are never pruned
//!   (so every exact-minimal leaf is visited under any schedule) and
//!   solutions are kept under a total order (exact cost, then lexicographic
//!   assignment). Node counts and timings remain schedule-dependent.
//! - [`SearchMode::Portfolio`] runs differently-seeded CP-style anytime
//!   workers (nogood learning, activity-guided ordering, geometric restarts,
//!   LNS around the incumbent) sharing the incumbent bound and short
//!   nogoods. It is built for throughput and anytime quality on large
//!   instances, not for run-to-run bit-identity. Sequentially (one worker,
//!   [`solve`]) the CP mode is deterministic under node budgets.

mod cp;
pub mod decompose;
mod nogood;
mod prep;
mod search;
pub mod stats;

pub use decompose::{solve_best_effort, solve_decomposed, solve_soft, SoftSolution};
pub use stats::{PruneKind, SearchStats, NUM_PRUNE_KINDS};

use crate::error::CoreError;
use crate::ic::PessimisticFailure;
use crate::problem::Problem;
use laar_model::ActivationStrategy;
use parking_lot::Mutex;
use prep::Prep;
use search::{Engine, RawSolution, Val};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// The total order under which solutions are kept: exact cost first, then
/// lexicographic assignment. The eps-band used for *pruning* is
/// deliberately absent here — an eps-tie comparison is not transitive
/// (costs `C`, `C+ε`, `C+2ε` form a cycle of "ties"), which would make the
/// winner depend on arrival order. Under this total order the final
/// incumbent is the lexicographically smallest exact-minimal-cost leaf, a
/// schedule-independent quantity.
#[inline]
pub(crate) fn better_solution(a: &RawSolution, b: &RawSolution) -> bool {
    match a.cost_rate.partial_cmp(&b.cost_rate) {
        Some(std::cmp::Ordering::Less) => true,
        Some(std::cmp::Ordering::Greater) => false,
        _ => a.assign < b.assign,
    }
}

/// Which search engine drives the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMode {
    /// The paper-faithful branch-and-bound: static lexicographic order,
    /// no learning, bit-identical incumbent for any thread count.
    Deterministic,
    /// CP-style anytime search: nogood learning, activity-guided ordering,
    /// geometric restarts, and LNS around the incumbent. Under
    /// [`solve_parallel`] this runs a portfolio of differently-seeded
    /// workers sharing the incumbent bound and short nogoods. Sequentially
    /// ([`solve`]) it is deterministic under node budgets (everything is
    /// metered in nodes and the RNG is seeded); across thread counts it is
    /// not bit-reproducible.
    Portfolio,
}

/// Tunables for the CP-style engine ([`SearchMode::Portfolio`]).
#[derive(Debug, Clone)]
pub struct CpConfig {
    /// Node budget of the first restart; later restarts grow geometrically.
    pub restart_base: u64,
    /// Geometric growth factor of the restart budget.
    pub restart_factor: f64,
    /// Upper clamp on the restart budget, so LNS keeps interleaving with
    /// tree restarts on huge instances. A proof of optimality requires one
    /// restart to finish its tree within this cap.
    pub restart_cap: u64,
    /// Run LNS rounds around the incumbent between restarts.
    pub lns: bool,
    /// Node budget of one LNS re-solve.
    pub lns_node_budget: u64,
    /// LNS rounds between two consecutive restarts.
    pub lns_rounds_per_restart: u32,
    /// Fraction of the neighborhood (hosts or variables) relaxed per LNS
    /// round; the freeze mask fixes the rest to the incumbent.
    pub relax_frac: f64,
    /// Base RNG seed; portfolio workers derive per-worker seeds from it.
    pub seed: u64,
    /// Capacity of the nogood store; learning stops (new nogoods are
    /// dropped) once full.
    pub max_nogoods: usize,
    /// Share short learned nogoods between portfolio workers.
    pub share_nogoods: bool,
}

impl Default for CpConfig {
    fn default() -> Self {
        Self {
            restart_base: 4096,
            restart_factor: 2.0,
            restart_cap: 1 << 26,
            lns: true,
            lns_node_budget: 16_384,
            lns_rounds_per_restart: 6,
            relax_frac: 0.3,
            seed: 0x1AA2_C0DE,
            max_nogoods: 65_536,
            share_nogoods: true,
        }
    }
}

/// Tunables for one FT-Search run.
#[derive(Debug, Clone)]
pub struct FtSearchConfig {
    /// Wall-clock limit; the paper used 10 minutes.
    pub time_limit: Duration,
    /// Enable pruning on the CPU constraint.
    pub prune_cpu: bool,
    /// Enable pruning on the IC upper bound.
    pub prune_compl: bool,
    /// Enable pruning on the cost lower bound.
    pub prune_cost: bool,
    /// Enable forward domain propagation.
    pub prune_dom: bool,
    /// Seed the search with a greedy feasible incumbent before exploring
    /// (tightens COST pruning from the first node and guarantees a `SOL`
    /// outcome on timeout whenever the greedy strategy is feasible). The
    /// paper's FT-Search starts cold; disable for algorithm-faithful
    /// first-solution statistics (Fig. 5).
    pub seed_incumbent: bool,
    /// Optional deterministic node budget: the search stops (as a timeout)
    /// after visiting this many nodes. Unlike the wall-clock limit this is
    /// reproducible across machines and runs.
    pub node_limit: Option<u64>,
    /// Worker threads for [`solve_parallel`] (`0` = all available cores).
    /// In portfolio mode `node_limit` is a per-worker budget.
    pub threads: usize,
    /// Search engine selection; see [`SearchMode`].
    pub mode: SearchMode,
    /// CP-engine tunables (used only when `mode` is
    /// [`SearchMode::Portfolio`]).
    pub cp: CpConfig,
}

impl Default for FtSearchConfig {
    fn default() -> Self {
        Self {
            time_limit: Duration::from_secs(600),
            prune_cpu: true,
            prune_compl: true,
            prune_cost: true,
            prune_dom: true,
            seed_incumbent: true,
            node_limit: None,
            threads: 0,
            mode: SearchMode::Deterministic,
            cp: CpConfig::default(),
        }
    }
}

impl FtSearchConfig {
    /// A configuration with the given time limit and all prunings enabled.
    pub fn with_time_limit(time_limit: Duration) -> Self {
        Self {
            time_limit,
            ..Self::default()
        }
    }
}

/// A feasible activation strategy with its objective values.
#[derive(Debug, Clone)]
pub struct Solution {
    /// The activation strategy.
    pub strategy: ActivationStrategy,
    /// `cost(s)` per eq. 13, in CPU cycles over the billing period `T`.
    pub cost_cycles: f64,
    /// Guaranteed IC under the pessimistic failure model (eq. 14).
    pub ic: f64,
}

/// Result of an FT-Search run, classified as in Fig. 4 of the paper.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// `BST`: the search exhausted the tree; the solution is optimal.
    Optimal(Solution),
    /// `SOL`: the time limit expired; the solution is feasible but not
    /// proved optimal.
    Feasible(Solution),
    /// `NUL`: the search exhausted the tree without finding any feasible
    /// solution; the instance is proved infeasible.
    Infeasible,
    /// `TMO`: the time limit expired before any feasible solution was found.
    Timeout,
}

impl Outcome {
    /// The solution, if any.
    pub fn solution(&self) -> Option<&Solution> {
        match self {
            Outcome::Optimal(s) | Outcome::Feasible(s) => Some(s),
            _ => None,
        }
    }

    /// The paper's four-letter label for this outcome.
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Optimal(_) => "BST",
            Outcome::Feasible(_) => "SOL",
            Outcome::Infeasible => "NUL",
            Outcome::Timeout => "TMO",
        }
    }
}

/// An FT-Search run's outcome together with its search statistics.
#[derive(Debug, Clone)]
pub struct SearchReport {
    /// The classified outcome.
    pub outcome: Outcome,
    /// Collected statistics (node counts, prune accounting, timings).
    pub stats: SearchStats,
}

/// Shared incumbent for parallel workers: the best cost seen (as `f64` bits
/// in an atomic) plus the corresponding raw solution.
pub(crate) struct SharedBest {
    cost_bits: AtomicU64,
    sol: Mutex<Option<RawSolution>>,
    cancelled: AtomicBool,
}

impl SharedBest {
    fn new() -> Self {
        Self {
            cost_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            sol: Mutex::new(None),
            cancelled: AtomicBool::new(false),
        }
    }

    #[inline]
    pub(crate) fn cost(&self) -> f64 {
        f64::from_bits(self.cost_bits.load(Ordering::Acquire))
    }

    #[inline]
    pub(crate) fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Ask all workers to stop (used by the portfolio once one worker has
    /// proved its run).
    pub(crate) fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Install `sol` if it wins the [`better_solution`] total order against
    /// the shared incumbent. `cost_bits` is maintained separately as a
    /// monotone bound (the cheapest cost anyone has seen) — it only ever
    /// tightens pruning, never decides which solution is kept.
    pub(crate) fn offer(&self, sol: &RawSolution) {
        {
            let mut guard = self.sol.lock();
            let replace = match guard.as_ref() {
                Some(existing) => better_solution(sol, existing),
                None => true,
            };
            if replace {
                *guard = Some(sol.clone());
            }
        }
        let mut cur = self.cost_bits.load(Ordering::Acquire);
        while sol.cost_rate < f64::from_bits(cur) {
            match self.cost_bits.compare_exchange_weak(
                cur,
                sol.cost_rate.to_bits(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }
}

/// Build a greedy feasible incumbent: all replicas active everywhere, then
/// per configuration deactivate replicas on overloaded hosts —
/// most-downstream PEs first, so upstream `Δ̂` chains survive and the IC
/// damage stays small. Returns `None` when the result violates the IC goal
/// or cannot unload some host.
fn greedy_seed(prep: &Prep) -> Option<RawSolution> {
    // Two unloading heuristics; keep the cheaper feasible result.
    let a = greedy_seed_with(prep, SeedHeuristic::DownstreamFirst);
    let b = greedy_seed_with(prep, SeedHeuristic::CheapestIcPerLoad);
    match (a, b) {
        (Some(x), Some(y)) => Some(if x.cost_rate <= y.cost_rate { x } else { y }),
        (x, y) => x.or(y),
    }
}

/// Candidate-selection rule used when the greedy seed unloads a host.
#[derive(Clone, Copy)]
enum SeedHeuristic {
    /// Deactivate the most-downstream fully replicated PE on the host
    /// (preserves upstream `Δ̂` chains).
    DownstreamFirst,
    /// Deactivate the PE with the smallest FIC contribution per unit of
    /// load relieved (directly IC-aware; better at strict IC goals).
    CheapestIcPerLoad,
}

fn greedy_seed_with(prep: &Prep, heuristic: SeedHeuristic) -> Option<RawSolution> {
    let nq = prep.num_configs;
    let mut assign = vec![Val::Both as u8; prep.num_vars];
    for c in 0..nq {
        let mut load = vec![0.0f64; prep.num_hosts];
        for pe in 0..prep.num_pes {
            let l = prep.replica_load[pe * nq + c];
            load[prep.host_of[pe][0] as usize] += l;
            load[prep.host_of[pe][1] as usize] += l;
        }
        loop {
            let over = (0..prep.num_hosts)
                .filter(|&h| load[h] >= prep.cap[h])
                .max_by(|&a, &b| {
                    (load[a] / prep.cap[a])
                        .partial_cmp(&(load[b] / prep.cap[b]))
                        .unwrap()
                });
            let Some(h) = over else { break };
            // Fully replicated PEs with a replica on h.
            let mut cand: Option<(usize, usize, f64)> = None;
            for pe in 0..prep.num_pes {
                let v = prep.var_index[pe * nq + c];
                if assign[v] != Val::Both as u8 {
                    continue;
                }
                for r in 0..2usize {
                    if prep.host_of[pe][r] as usize != h {
                        continue;
                    }
                    let better = match heuristic {
                        // Highest dense index = most downstream.
                        SeedHeuristic::DownstreamFirst => cand.is_none_or(|(p, _, _)| pe > p),
                        SeedHeuristic::CheapestIcPerLoad => {
                            let l = prep.replica_load[pe * nq + c].max(1e-12);
                            let score = prep.w_ic[v] / l;
                            cand.is_none_or(|(_, _, s)| score < s)
                        }
                    };
                    if better {
                        let score = match heuristic {
                            SeedHeuristic::DownstreamFirst => 0.0,
                            SeedHeuristic::CheapestIcPerLoad => {
                                prep.w_ic[v] / prep.replica_load[pe * nq + c].max(1e-12)
                            }
                        };
                        cand = Some((pe, r, score));
                    }
                }
            }
            let (pe, r, _) = cand?;
            let v = prep.var_index[pe * nq + c];
            assign[v] = if r == 0 { Val::Only1 } else { Val::Only0 } as u8;
            load[h] -= prep.replica_load[pe * nq + c];
        }
    }
    let (cost_rate, fic_rate, max_rel) = search::evaluate_assignment(prep, &assign);
    (fic_rate >= prep.goal_fic * (1.0 - 1e-9) && max_rel < 1.0).then_some(RawSolution {
        assign,
        cost_rate,
        fic_rate,
    })
}

fn raw_to_solution(problem: &Problem, prep: &Prep, raw: &RawSolution) -> Solution {
    let sol = raw_to_solution_parts(problem, prep, &raw.assign);
    debug_assert!(
        (raw.fic_rate * problem.app.billing_period()
            - problem
                .ic_evaluator()
                .fic(&sol.strategy, &PessimisticFailure))
        .abs()
            < 1e-6 * problem.ic_evaluator().bic().max(1.0)
    );
    sol
}

/// Convert a complete raw assignment (in `Prep` variable order) into a
/// [`Solution`], recomputing objectives through the public evaluators so the
/// reported numbers agree with `Problem::check`.
pub(crate) fn raw_to_solution_parts(problem: &Problem, prep: &Prep, assign: &[u8]) -> Solution {
    let nq = prep.num_configs;
    let mut strategy = ActivationStrategy::all_inactive(prep.num_pes, nq, 2);
    for (v, var) in prep.vars.iter().enumerate() {
        let pe = var.pe as usize;
        let c = var.cfg;
        match assign[v] {
            x if x == Val::Both as u8 => {
                strategy.set_active(pe, c, 0, true);
                strategy.set_active(pe, c, 1, true);
            }
            x if x == Val::Only0 as u8 => strategy.set_active(pe, c, 0, true),
            x if x == Val::Only1 as u8 => strategy.set_active(pe, c, 1, true),
            _ => unreachable!("complete assignment expected"),
        }
    }
    // Recompute objective values through the public evaluators so the
    // reported numbers agree with `Problem::check`.
    let ev = problem.ic_evaluator();
    let ic = ev.ic(&strategy, &PessimisticFailure);
    let cm = problem.cost_model();
    let cost_cycles = cm.cost_cycles(&strategy);
    Solution {
        strategy,
        cost_cycles,
        ic,
    }
}

fn classify(problem: &Problem, prep: &Prep, best: Option<RawSolution>, timed_out: bool) -> Outcome {
    match (best, timed_out) {
        (Some(raw), false) => Outcome::Optimal(raw_to_solution(problem, prep, &raw)),
        (Some(raw), true) => Outcome::Feasible(raw_to_solution(problem, prep, &raw)),
        (None, false) => Outcome::Infeasible,
        (None, true) => Outcome::Timeout,
    }
}

/// Convert a complete strategy into a raw incumbent, provided it is
/// feasible for this problem (eq. 12 shape, CPU fit, IC goal).
fn strategy_to_raw(prep: &Prep, strategy: &ActivationStrategy) -> Option<RawSolution> {
    if strategy.num_pes() != prep.num_pes
        || strategy.num_configs() != prep.num_configs
        || strategy.k() != 2
    {
        return None;
    }
    let mut assign = vec![0u8; prep.num_vars];
    for (v, var) in prep.vars.iter().enumerate() {
        let pe = var.pe as usize;
        let a0 = strategy.is_active(pe, var.cfg, 0);
        let a1 = strategy.is_active(pe, var.cfg, 1);
        assign[v] = match (a0, a1) {
            (true, true) => Val::Both,
            (true, false) => Val::Only0,
            (false, true) => Val::Only1,
            (false, false) => return None,
        } as u8;
    }
    let (cost_rate, fic_rate, max_rel) = search::evaluate_assignment(prep, &assign);
    (fic_rate >= prep.goal_fic * (1.0 - 1e-9) && max_rel < 1.0).then_some(RawSolution {
        assign,
        cost_rate,
        fic_rate,
    })
}

/// The cheapest feasible incumbent among the greedy seed and a caller-
/// provided warm-start strategy.
fn best_seed(
    prep: &Prep,
    opts: &FtSearchConfig,
    warm_start: Option<&ActivationStrategy>,
) -> Option<RawSolution> {
    let mut best: Option<RawSolution> = None;
    let mut offer = |cand: Option<RawSolution>| {
        if let Some(c) = cand {
            match &best {
                Some(b) if b.cost_rate <= c.cost_rate => {}
                _ => best = Some(c),
            }
        }
    };
    if opts.seed_incumbent {
        offer(greedy_seed(prep));
    }
    offer(warm_start.and_then(|s| strategy_to_raw(prep, s)));
    best
}

/// A fast deterministic estimate of the cheapest feasible cost-rate for
/// this problem: a greedy-seeded FT-Search run under a fixed node budget.
/// Used by the placement local search ([`crate::placement_opt`]) to rank
/// candidate placements without a full solve per move. Returns `None` when
/// no feasible strategy was found within the budget.
pub fn budgeted_cost_rate(problem: &Problem, node_budget: u64) -> Option<f64> {
    if problem.k() != 2 {
        return None;
    }
    let opts = FtSearchConfig {
        node_limit: Some(node_budget),
        ..FtSearchConfig::default()
    };
    let report = solve(problem, &opts).ok()?;
    report
        .outcome
        .solution()
        .map(|s| s.cost_cycles / problem.app.billing_period())
}

/// Run sequential FT-Search on a problem.
///
/// # Errors
///
/// Returns [`CoreError::UnsupportedReplication`] unless the placement uses
/// `k = 2` (the paper's FT-Search restriction).
pub fn solve(problem: &Problem, opts: &FtSearchConfig) -> Result<SearchReport, CoreError> {
    solve_with_warm_start(problem, opts, None)
}

/// Run sequential FT-Search with an optional warm-start strategy installed
/// as the initial incumbent when it is feasible for this problem. Useful for
/// cascades over decreasing IC requirements: a solution guaranteeing IC 0.7
/// is feasible for the 0.6 and 0.5 problems, so solving strictest-first and
/// warm-starting the rest guarantees cost monotonicity across the cascade
/// even under tight time limits.
pub fn solve_with_warm_start(
    problem: &Problem,
    opts: &FtSearchConfig,
    warm_start: Option<&ActivationStrategy>,
) -> Result<SearchReport, CoreError> {
    if problem.k() != 2 {
        return Err(CoreError::UnsupportedReplication { k: problem.k() });
    }
    let prep = Prep::build(problem);
    let start = Instant::now();
    let deadline = start + opts.time_limit;
    if opts.mode == SearchMode::Portfolio && prep.num_vars > 0 {
        let warm = best_seed(&prep, opts, warm_start);
        let params = cp::CpWorkerParams {
            seed: opts.cp.seed,
            restart_base: opts.cp.restart_base,
            restart_factor: opts.cp.restart_factor,
            relax_frac: opts.cp.relax_frac,
            worker_id: 0,
        };
        let (best, stats) = cp::solve_cp(&prep, opts, start, deadline, None, None, &params, warm);
        let timed_out = !stats.proved;
        return Ok(SearchReport {
            outcome: classify(problem, &prep, best, timed_out),
            stats,
        });
    }
    let mut engine = Engine::new(&prep, opts, start, deadline, None);
    if let Some(seed) = best_seed(&prep, opts, warm_start) {
        engine.set_seed(seed);
    }
    let (best, timed_out) = engine.run(0);
    let stats = engine.stats.clone();
    Ok(SearchReport {
        outcome: classify(problem, &prep, best, timed_out),
        stats,
    })
}

/// Enumerate all non-CPU-pruned prefixes of length `depth` as parallel tasks.
fn enumerate_prefixes(depth: usize) -> Vec<Vec<Val>> {
    let mut out: Vec<Vec<Val>> = vec![Vec::new()];
    for _ in 0..depth {
        let mut next = Vec::with_capacity(out.len() * 3);
        for p in &out {
            for v in [Val::Only0, Val::Only1, Val::Both] {
                let mut q = p.clone();
                q.push(v);
                next.push(q);
            }
        }
        out = next;
    }
    out
}

/// Run FT-Search with the top `split_depth` levels of the tree fanned out
/// over OS threads, sharing the incumbent cost bound across workers (the
/// parallel implementation of §4.5).
///
/// The returned incumbent (assignment, cost, FIC) is **identical for every
/// thread count** on runs that complete within their limits: workers run
/// in tie-keeping mode (COST pruning keeps an eps-slack above the shared
/// incumbent, so every exact-minimal-cost leaf is visited regardless of
/// how fast other workers tighten the bound) and all merging — worker
/// locals in prefix order, then the shared incumbent — uses the
/// `better_solution` total order. Worker statistics are merged;
/// `time_to_first`/`time_to_best` reflect the earliest/cheapest across
/// workers and, like node counts, remain schedule-dependent.
pub fn solve_parallel(problem: &Problem, opts: &FtSearchConfig) -> Result<SearchReport, CoreError> {
    if problem.k() != 2 {
        return Err(CoreError::UnsupportedReplication { k: problem.k() });
    }
    let prep = Prep::build(problem);
    let threads = if opts.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        opts.threads
    };
    if opts.mode == SearchMode::Portfolio && prep.num_vars > 0 {
        return Ok(solve_portfolio(problem, &prep, opts, threads));
    }
    // Split deep enough to get a few tasks per thread, shallow enough that
    // prefix duplication stays negligible.
    let mut split_depth = 0usize;
    while 3usize.pow(split_depth as u32) < threads * 4 && split_depth < prep.num_vars {
        split_depth += 1;
    }
    if split_depth == 0 || prep.num_vars == 0 {
        return solve(problem, opts);
    }

    let start = Instant::now();
    let deadline = start + opts.time_limit;
    let shared = SharedBest::new();
    if opts.seed_incumbent {
        if let Some(seed) = greedy_seed(&prep) {
            shared.offer(&seed);
        }
    }
    let prefixes = enumerate_prefixes(split_depth);

    // (incumbent, timed out, stats) of one prefix subtree.
    type PrefixResult = (Option<RawSolution>, bool, SearchStats);
    let run_task = |prefix: &Vec<Val>| -> PrefixResult {
        let mut engine = Engine::new(&prep, opts, start, deadline, Some(&shared));
        if !engine.push_prefix(prefix) {
            let stats = engine.stats.clone();
            return (None, false, stats);
        }
        let (best, timed_out) = engine.run(split_depth);
        let stats = engine.stats.clone();
        (best, timed_out, stats)
    };

    let results: Vec<Option<PrefixResult>> = if threads == 1 {
        prefixes.iter().map(|p| Some(run_task(p))).collect()
    } else {
        // Real OS threads pulling prefixes from a shared work index; each
        // thread keeps its (prefix index, result) pairs locally and the
        // results are re-ordered by prefix index afterwards, so the merge
        // below is independent of which thread ran what.
        let next = AtomicUsize::new(0);
        let gathered: Vec<(usize, PrefixResult)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= prefixes.len() {
                                break;
                            }
                            local.push((i, run_task(&prefixes[i])));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("solver worker panicked"))
                .collect()
        });
        let mut slots: Vec<Option<PrefixResult>> = (0..prefixes.len()).map(|_| None).collect();
        for (i, r) in gathered {
            slots[i] = Some(r);
        }
        slots
    };

    let mut stats = SearchStats::default();
    let mut best: Option<RawSolution> = None;
    let mut timed_out = false;
    for entry in results.into_iter().flatten() {
        let (sol, to, st) = entry;
        stats.merge(&st);
        timed_out |= to;
        if let Some(s) = sol {
            if best.as_ref().is_none_or(|b| better_solution(&s, b)) {
                best = Some(s);
            }
        }
    }
    // The shared incumbent may hold a solution found by a worker whose local
    // best was later overwritten; fold it in under the same total order.
    if let Some(shared_sol) = shared.sol.lock().take() {
        if best
            .as_ref()
            .is_none_or(|b| better_solution(&shared_sol, b))
        {
            best = Some(shared_sol);
        }
    }
    stats.proved = !timed_out;
    stats.elapsed = start.elapsed();
    Ok(SearchReport {
        outcome: classify(problem, &prep, best, timed_out),
        stats,
    })
}

/// Run a portfolio of CP workers with diversified seeds, restart schedules
/// and LNS neighborhood sizes. Workers share the incumbent cost bound (which
/// tightens COST pruning everywhere) and, when `cp.share_nogoods` is set,
/// publish short learned nogoods into a pool that other workers import at
/// their restart boundaries. The first worker to prove its run (complete a
/// restart tree within budget) cancels the rest.
fn solve_portfolio(
    problem: &Problem,
    prep: &Prep,
    opts: &FtSearchConfig,
    threads: usize,
) -> SearchReport {
    let start = Instant::now();
    let deadline = start + opts.time_limit;
    let shared = SharedBest::new();
    let pool = if opts.cp.share_nogoods && threads > 1 {
        Some(cp::NogoodPool::default())
    } else {
        None
    };
    let warm = best_seed(prep, opts, None);

    type WorkerResult = (Option<RawSolution>, SearchStats);
    let results: Vec<WorkerResult> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|i| {
                let shared = &shared;
                let pool = pool.as_ref();
                let warm = warm.clone();
                s.spawn(move || {
                    let params = cp::CpWorkerParams {
                        seed: opts
                            .cp
                            .seed
                            .wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                        restart_base: opts.cp.restart_base << (i % 3),
                        restart_factor: opts.cp.restart_factor,
                        relax_frac: match i % 3 {
                            0 => opts.cp.relax_frac,
                            1 => (opts.cp.relax_frac * 1.5).min(0.9),
                            _ => (opts.cp.relax_frac * 0.5).max(0.05),
                        },
                        worker_id: i,
                    };
                    let (best, stats) = cp::solve_cp(
                        prep,
                        opts,
                        start,
                        deadline,
                        Some(shared),
                        pool,
                        &params,
                        warm,
                    );
                    if stats.proved {
                        shared.cancel();
                    }
                    (best, stats)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("portfolio worker panicked"))
            .collect()
    });

    let mut stats = SearchStats::default();
    let mut best: Option<RawSolution> = None;
    let mut proved = false;
    for (sol, st) in results {
        proved |= st.proved;
        stats.merge(&st);
        if let Some(s) = sol {
            if best.as_ref().is_none_or(|b| better_solution(&s, b)) {
                best = Some(s);
            }
        }
    }
    if let Some(shared_sol) = shared.sol.lock().take() {
        if best
            .as_ref()
            .is_none_or(|b| better_solution(&shared_sol, b))
        {
            best = Some(shared_sol);
        }
    }
    stats.proved = proved;
    stats.elapsed = start.elapsed();
    SearchReport {
        outcome: classify(problem, prep, best, !proved),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ic::PessimisticFailure;
    use crate::testutil::{chain_problem, diamond_problem, fig2_problem};
    use laar_model::ConfigId;

    #[test]
    fn fig2_outcome_is_optimal_and_feasible() {
        let p = fig2_problem(0.6);
        let report = solve(&p, &FtSearchConfig::default()).unwrap();
        let sol = match &report.outcome {
            Outcome::Optimal(s) => s,
            o => panic!("expected BST, got {}", o.label()),
        };
        assert!(p.is_feasible(&sol.strategy), "{:?}", p.check(&sol.strategy));
        assert!(sol.ic >= 0.6 - 1e-9);
        assert_eq!(report.outcome.label(), "BST");
    }

    #[test]
    fn infeasible_instance_is_nul() {
        let p = fig2_problem(0.95);
        let report = solve(&p, &FtSearchConfig::default()).unwrap();
        assert!(matches!(report.outcome, Outcome::Infeasible));
        assert_eq!(report.outcome.label(), "NUL");
        assert!(report.stats.proved);
    }

    #[test]
    fn matches_brute_force_on_diamond() {
        // Exhaustively enumerate all 3^(4*2) = 6561 strategies and compare.
        let p = diamond_problem(0.55);
        let report = solve(&p, &FtSearchConfig::default()).unwrap();
        let cm = p.cost_model();

        let mut best: Option<f64> = None;
        let np = 4;
        let nq = 2;
        let total = 3usize.pow((np * nq) as u32);
        for code in 0..total {
            let mut s = ActivationStrategy::all_inactive(np, nq, 2);
            let mut rem = code;
            for pe in 0..np {
                for c in 0..nq {
                    let v = rem % 3;
                    rem /= 3;
                    let cid = ConfigId(c as u32);
                    match v {
                        0 => {
                            s.set_active(pe, cid, 0, true);
                        }
                        1 => {
                            s.set_active(pe, cid, 1, true);
                        }
                        _ => {
                            s.set_active(pe, cid, 0, true);
                            s.set_active(pe, cid, 1, true);
                        }
                    }
                }
            }
            if p.is_feasible(&s) {
                let c = cm.cost_cycles(&s);
                best = Some(best.map_or(c, |b: f64| b.min(c)));
            }
        }

        match (&report.outcome, best) {
            (Outcome::Optimal(sol), Some(b)) => {
                assert!(
                    (sol.cost_cycles - b).abs() < 1e-6 * b.max(1.0),
                    "ftsearch {} vs brute force {}",
                    sol.cost_cycles,
                    b
                );
            }
            (Outcome::Infeasible, None) => {}
            (o, b) => panic!("mismatch: {} vs {:?}", o.label(), b),
        }
    }

    #[test]
    fn solution_respects_pessimistic_ic() {
        for ic_req in [0.0, 0.3, 0.5, 0.7] {
            let p = diamond_problem(ic_req);
            let report = solve(&p, &FtSearchConfig::default()).unwrap();
            if let Some(sol) = report.outcome.solution() {
                let ev = p.ic_evaluator();
                assert!(ev.ic(&sol.strategy, &PessimisticFailure) >= ic_req - 1e-9);
            }
        }
    }

    #[test]
    fn cost_is_monotone_in_ic_requirement() {
        let costs: Vec<f64> = [0.0, 0.4, 0.6]
            .iter()
            .map(|&ic| {
                let p = fig2_problem(ic);
                let report = solve(&p, &FtSearchConfig::default()).unwrap();
                report.outcome.solution().expect("feasible").cost_cycles
            })
            .collect();
        assert!(costs[0] <= costs[1] + 1e-9);
        assert!(costs[1] <= costs[2] + 1e-9);
    }

    #[test]
    fn parallel_agrees_with_sequential() {
        for ic in [0.0, 0.5, 0.65] {
            let p = diamond_problem(ic);
            let seq = solve(&p, &FtSearchConfig::default()).unwrap();
            let par = solve_parallel(&p, &FtSearchConfig::default()).unwrap();
            match (&seq.outcome, &par.outcome) {
                (Outcome::Optimal(a), Outcome::Optimal(b)) => {
                    assert!((a.cost_cycles - b.cost_cycles).abs() < 1e-6 * a.cost_cycles.max(1.0));
                }
                (Outcome::Infeasible, Outcome::Infeasible) => {}
                (a, b) => panic!("outcomes differ: {} vs {}", a.label(), b.label()),
            }
        }
    }

    #[test]
    fn timeout_yields_tmo_or_sol() {
        let p = chain_problem(24, 4, 0.5);
        let opts = FtSearchConfig::with_time_limit(Duration::from_micros(1));
        let report = solve(&p, &opts).unwrap();
        assert!(
            matches!(report.outcome, Outcome::Timeout | Outcome::Feasible(_)),
            "got {}",
            report.outcome.label()
        );
        assert!(!report.stats.proved);
    }

    #[test]
    fn chain_instance_solves_quickly_with_pruning() {
        let p = chain_problem(16, 4, 0.5);
        let report = solve(
            &p,
            &FtSearchConfig::with_time_limit(Duration::from_secs(30)),
        )
        .unwrap();
        assert!(
            matches!(report.outcome, Outcome::Optimal(_) | Outcome::Infeasible),
            "expected proved outcome, got {}",
            report.outcome.label()
        );
    }

    #[test]
    fn disabling_prunings_preserves_optimum() {
        let p = diamond_problem(0.5);
        let full = solve(&p, &FtSearchConfig::default()).unwrap();
        for (cpu, compl, cost, dom) in [
            (false, true, true, true),
            (true, false, true, true),
            (true, true, false, true),
            (true, true, true, false),
            (false, false, false, false),
        ] {
            let opts = FtSearchConfig {
                prune_cpu: cpu,
                prune_compl: compl,
                prune_cost: cost,
                prune_dom: dom,
                ..FtSearchConfig::default()
            };
            let r = solve(&p, &opts).unwrap();
            match (&full.outcome, &r.outcome) {
                (Outcome::Optimal(a), Outcome::Optimal(b)) => {
                    assert!(
                        (a.cost_cycles - b.cost_cycles).abs() < 1e-6 * a.cost_cycles.max(1.0),
                        "ablated search changed the optimum"
                    );
                }
                (Outcome::Infeasible, Outcome::Infeasible) => {}
                (a, b) => panic!("outcomes differ: {} vs {}", a.label(), b.label()),
            }
        }
    }

    #[test]
    fn prefix_enumeration_counts() {
        assert_eq!(enumerate_prefixes(0).len(), 1);
        assert_eq!(enumerate_prefixes(2).len(), 9);
        assert_eq!(enumerate_prefixes(3).len(), 27);
    }
}
