//! Nogood store for the CP-style FT-Search.
//!
//! A *nogood* is a set of literals over the activation variables such that no
//! complete assignment satisfying all of them is feasible (it necessarily
//! violates a host CPU capacity or makes the IC goal unreachable). Nogoods are
//! learned at CPU/COMPL bound violations, minimized to the few assignments
//! that actually caused the violation, and consulted before descent so refuted
//! subtrees are never re-entered — within a run, across geometric restarts,
//! and (for short ones) across portfolio workers.
//!
//! The store uses SAT-style two-watched-literal propagation, adapted to the
//! "block before descent" use: watches sit on literals that are *not yet
//! true*; when a watched literal becomes true and no replacement watch exists,
//! the one remaining literal is *forbidden* (assigning its value would
//! complete the nogood). Forbidden counters are trailed and undone on
//! backtrack. Because watch moves are never undone, the structure is
//! backtrack-safe without per-level bookkeeping.
//!
//! Soundness does not depend on which pruning flags are enabled: a learned
//! nogood only ever references values actually assigned on the branch, and the
//! bound argument behind it holds for every completion (see `Engine::learn_*`).

use super::search::Val;

/// Literal codes per variable. `Eq*` pin the exact value; `Cov0`/`Cov1`
/// generalize to "replica r is active" (used by CPU reasons: any value keeping
/// the replica on the overloaded host contributes its load); `NotBoth`
/// generalizes to "not fully replicated" (used by COMPL reasons: any single
/// value loses the variable's full IC contribution).
pub(crate) const CODE_EQ_BOTH: u32 = 0;
pub(crate) const CODE_EQ_ONLY0: u32 = 1;
pub(crate) const CODE_EQ_ONLY1: u32 = 2;
pub(crate) const CODE_COV0: u32 = 3;
pub(crate) const CODE_COV1: u32 = 4;
pub(crate) const CODE_NOT_BOTH: u32 = 5;
/// Literal codes per variable (the literal id is `var * CODES + code`).
pub(crate) const CODES: u32 = 6;

/// Build a literal id.
#[inline]
pub(crate) fn lit(var: u32, code: u32) -> u32 {
    var * CODES + code
}

/// The variable a literal talks about.
#[inline]
pub(crate) fn lit_var(l: u32) -> u32 {
    l / CODES
}

/// The (up to three) literals made true by assigning `val` to `var`.
#[inline]
pub(crate) fn true_lits(var: u32, val: Val) -> [u32; 3] {
    match val {
        Val::Both => [
            lit(var, CODE_EQ_BOTH),
            lit(var, CODE_COV0),
            lit(var, CODE_COV1),
        ],
        Val::Only0 => [
            lit(var, CODE_EQ_ONLY0),
            lit(var, CODE_COV0),
            lit(var, CODE_NOT_BOTH),
        ],
        Val::Only1 => [
            lit(var, CODE_EQ_ONLY1),
            lit(var, CODE_COV1),
            lit(var, CODE_NOT_BOTH),
        ],
    }
}

/// Is literal `l` true under the partial assignment (`0` = unassigned)?
#[inline]
fn lit_true(l: u32, assign: &[u8]) -> bool {
    let a = assign[lit_var(l) as usize];
    if a == 0 {
        return false;
    }
    match l % CODES {
        CODE_EQ_BOTH => a == Val::Both as u8,
        CODE_EQ_ONLY0 => a == Val::Only0 as u8,
        CODE_EQ_ONLY1 => a == Val::Only1 as u8,
        CODE_COV0 => a == Val::Both as u8 || a == Val::Only0 as u8,
        CODE_COV1 => a == Val::Both as u8 || a == Val::Only1 as u8,
        _ => a != Val::Both as u8,
    }
}

/// Watched-literal nogood store. All nogoods have at most one literal per
/// variable and length ≥ 2 (length-1 nogoods become permanent forbids).
pub(crate) struct NogoodStore {
    /// Literal arena; nogood `g` occupies `lits[bounds[g]..bounds[g+1]]`.
    lits: Vec<u32>,
    bounds: Vec<u32>,
    /// `lit -> nogood ids currently watching it`.
    watch: Vec<Vec<u32>>,
    /// `nogood -> its two watched literals`.
    watched: Vec<[u32; 2]>,
    /// `lit -> number of active unit blocks` (assigning a value whose true
    /// literals include this one would complete a nogood).
    forbidden: Vec<u32>,
    /// Blocked literals, undone by `undo_to` on backtrack.
    trail: Vec<u32>,
    /// Canonical (sorted) literal sets already stored — duplicate learns are
    /// rejected (a COMPL reason not mentioning the branching variable can be
    /// re-derived at every sibling value).
    seen: std::collections::HashSet<Vec<u32>>,
    /// Nogoods recorded (including permanent length-1 forbids).
    pub learned: u64,
    /// Total literals across learned nogoods.
    pub learned_lits: u64,
    /// Learn attempts dropped because the store was full.
    pub dropped: u64,
    max_count: usize,
}

impl NogoodStore {
    pub(crate) fn new(num_vars: usize, max_count: usize) -> Self {
        let nlits = num_vars * CODES as usize;
        Self {
            lits: Vec::new(),
            bounds: vec![0],
            watch: vec![Vec::new(); nlits],
            watched: Vec::new(),
            forbidden: vec![0; nlits],
            trail: Vec::new(),
            seen: std::collections::HashSet::new(),
            learned: 0,
            learned_lits: 0,
            dropped: 0,
            max_count,
        }
    }

    /// Number of stored (length ≥ 2) nogoods.
    #[inline]
    pub(crate) fn count(&self) -> usize {
        self.watched.len()
    }

    /// Room for more nogoods?
    #[inline]
    pub(crate) fn has_room(&self) -> bool {
        self.count() < self.max_count
    }

    /// The literals of stored nogood `g`.
    pub(crate) fn nogood(&self, g: usize) -> &[u32] {
        &self.lits[self.bounds[g] as usize..self.bounds[g + 1] as usize]
    }

    /// Would assigning `val` to `var` complete a known nogood?
    #[inline]
    pub(crate) fn is_forbidden(&self, var: u32, val: Val) -> bool {
        true_lits(var, val)
            .into_iter()
            .any(|l| self.forbidden[l as usize] > 0)
    }

    /// Current trail mark; pair with `undo_to` around an assignment.
    #[inline]
    pub(crate) fn mark(&self) -> usize {
        self.trail.len()
    }

    /// Undo all unit blocks recorded since `mark`.
    #[inline]
    pub(crate) fn undo_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let l = self.trail.pop().unwrap();
            self.forbidden[l as usize] -= 1;
        }
    }

    /// Notify the store that `var` was just assigned `val` (`assign` already
    /// reflects it). Moves watches, records unit blocks on the trail, and
    /// returns `true` if the assignment *completes* a nogood — the caller must
    /// treat the branch as refuted (after `undo_to` + unassign).
    pub(crate) fn on_assign(&mut self, var: u32, val: Val, assign: &[u8]) -> bool {
        let mut conflict = false;
        for l in true_lits(var, val) {
            let mut i = 0;
            while i < self.watch[l as usize].len() {
                let g = self.watch[l as usize][i] as usize;
                let [w0, w1] = self.watched[g];
                let other = if w0 == l { w1 } else { w0 };
                let (s, e) = (self.bounds[g] as usize, self.bounds[g + 1] as usize);
                let mut moved = false;
                for j in s..e {
                    let cand = self.lits[j];
                    if cand != l && cand != other && !lit_true(cand, assign) {
                        self.watched[g] = [cand, other];
                        self.watch[cand as usize].push(g as u32);
                        self.watch[l as usize].swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if !moved {
                    // All literals but (at most) `other` are true.
                    if lit_true(other, assign) {
                        conflict = true;
                    } else {
                        self.forbidden[other as usize] += 1;
                        self.trail.push(other);
                    }
                    i += 1;
                }
            }
        }
        conflict
    }

    /// Record a learned nogood. `nglits` must hold at most one literal per
    /// variable; `depth_of[var]` is the assignment depth used to watch the two
    /// deepest (soonest-backtracked) literals. Length-1 nogoods become
    /// permanent forbids. Returns `false` when dropped (store full).
    pub(crate) fn learn(&mut self, nglits: &[u32], depth_of: &[u32]) -> bool {
        match nglits.len() {
            0 => false,
            1 => {
                if !self.note_new(nglits) {
                    return false;
                }
                self.forbidden[nglits[0] as usize] += 1;
                self.learned += 1;
                self.learned_lits += 1;
                true
            }
            _ => {
                if !self.has_room() {
                    self.dropped += 1;
                    return false;
                }
                if !self.note_new(nglits) {
                    return false;
                }
                let g = self.watched.len() as u32;
                // Two deepest-assigned literals become the watches: they are
                // the first to become untrue on backtrack.
                let mut d0 = 0usize; // deepest
                let mut d1 = 1usize; // second deepest
                let depth = |l: u32| depth_of[lit_var(l) as usize];
                if depth(nglits[d1]) > depth(nglits[d0]) {
                    std::mem::swap(&mut d0, &mut d1);
                }
                for (j, &l) in nglits.iter().enumerate().skip(2) {
                    if depth(l) > depth(nglits[d0]) {
                        d1 = d0;
                        d0 = j;
                    } else if depth(l) > depth(nglits[d1]) {
                        d1 = j;
                    }
                }
                self.push_nogood(g, nglits, nglits[d0], nglits[d1]);
                true
            }
        }
    }

    /// Import a nogood learned elsewhere (portfolio pool). Must be called at a
    /// restart boundary (empty assignment): both watches start untrue.
    pub(crate) fn import(&mut self, nglits: &[u32]) -> bool {
        match nglits.len() {
            0 => false,
            1 => {
                if !self.note_new(nglits) {
                    return false;
                }
                self.forbidden[nglits[0] as usize] += 1;
                self.learned += 1;
                self.learned_lits += 1;
                true
            }
            _ => {
                if !self.has_room() {
                    self.dropped += 1;
                    return false;
                }
                if !self.note_new(nglits) {
                    return false;
                }
                let g = self.watched.len() as u32;
                self.push_nogood(g, nglits, nglits[0], nglits[1]);
                true
            }
        }
    }

    /// Register the canonical form of `nglits`; `false` if already stored.
    fn note_new(&mut self, nglits: &[u32]) -> bool {
        let mut key = nglits.to_vec();
        key.sort_unstable();
        self.seen.insert(key)
    }

    fn push_nogood(&mut self, g: u32, nglits: &[u32], w0: u32, w1: u32) {
        self.lits.extend_from_slice(nglits);
        self.bounds.push(self.lits.len() as u32);
        self.watched.push([w0, w1]);
        self.watch[w0 as usize].push(g);
        self.watch[w1 as usize].push(g);
        self.learned += 1;
        self.learned_lits += nglits.len() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_truth_table() {
        let assign = [Val::Both as u8, Val::Only0 as u8, Val::Only1 as u8, 0];
        assert!(lit_true(lit(0, CODE_EQ_BOTH), &assign));
        assert!(lit_true(lit(0, CODE_COV0), &assign));
        assert!(lit_true(lit(0, CODE_COV1), &assign));
        assert!(!lit_true(lit(0, CODE_NOT_BOTH), &assign));
        assert!(lit_true(lit(1, CODE_COV0), &assign));
        assert!(lit_true(lit(1, CODE_NOT_BOTH), &assign));
        assert!(!lit_true(lit(1, CODE_COV1), &assign));
        assert!(lit_true(lit(2, CODE_COV1), &assign));
        assert!(!lit_true(lit(3, CODE_COV0), &assign));
    }

    /// Drive the store through assign/undo cycles the way the engine does and
    /// check that completions of a learned nogood are always blocked, either
    /// by a forbidden counter or by the conflict flag.
    #[test]
    fn unit_blocking_across_backtracks() {
        let mut ng = NogoodStore::new(3, 16);
        let mut assign = [0u8; 3];
        let mut depth_of = [0u32; 3];
        let mut marks = Vec::new();
        let set = |ng: &mut NogoodStore,
                   assign: &mut [u8; 3],
                   depth_of: &mut [u32; 3],
                   marks: &mut Vec<usize>,
                   v: usize,
                   val: Val|
         -> bool {
            assert!(!ng.is_forbidden(v as u32, val), "pre-check must catch");
            assign[v] = val as u8;
            depth_of[v] = marks.len() as u32;
            marks.push(ng.mark());
            ng.on_assign(v as u32, val, assign)
        };
        let unset =
            |ng: &mut NogoodStore, assign: &mut [u8; 3], marks: &mut Vec<usize>, v: usize| {
                let m = marks.pop().unwrap();
                ng.undo_to(m);
                assign[v] = 0;
            };

        // Assign v0=Both, v1=Only0, then learn {v0=Both, v1 covers r0}.
        assert!(!set(
            &mut ng,
            &mut assign,
            &mut depth_of,
            &mut marks,
            0,
            Val::Both
        ));
        assert!(!set(
            &mut ng,
            &mut assign,
            &mut depth_of,
            &mut marks,
            1,
            Val::Only0
        ));
        let learned = ng.learn(&[lit(0, CODE_EQ_BOTH), lit(1, CODE_COV0)], &depth_of);
        assert!(learned);

        // Backtrack v1; re-assigning any r0-covering value must now be
        // blocked before descent or flagged as a conflict on assignment.
        unset(&mut ng, &mut assign, &mut marks, 1);
        let blocked_pre = ng.is_forbidden(1, Val::Only0);
        if !blocked_pre {
            assign[1] = Val::Only0 as u8;
            assert!(ng.on_assign(1, Val::Only0, &assign), "conflict must fire");
            assign[1] = 0;
        }
        let blocked_pre_both = ng.is_forbidden(1, Val::Both);
        if !blocked_pre_both {
            assign[1] = Val::Both as u8;
            assert!(ng.on_assign(1, Val::Both, &assign));
            assign[1] = 0;
        }
        // Only1 does not cover replica 0: allowed.
        assert!(!ng.is_forbidden(1, Val::Only1));

        // Backtrack v0 as well: everything is allowed again.
        unset(&mut ng, &mut assign, &mut marks, 0);
        assert!(!ng.is_forbidden(1, Val::Only0));
        assert!(!ng.is_forbidden(0, Val::Both));
    }

    #[test]
    fn length_one_is_permanent() {
        let mut ng = NogoodStore::new(2, 4);
        ng.learn(&[lit(0, CODE_NOT_BOTH)], &[0, 0]);
        assert!(ng.is_forbidden(0, Val::Only0));
        assert!(ng.is_forbidden(0, Val::Only1));
        assert!(!ng.is_forbidden(0, Val::Both));
    }

    #[test]
    fn capacity_cap_drops() {
        let mut ng = NogoodStore::new(4, 1);
        assert!(ng.learn(&[lit(0, CODE_EQ_BOTH), lit(1, CODE_EQ_BOTH)], &[0, 1, 2, 3]));
        assert!(!ng.learn(&[lit(2, CODE_EQ_BOTH), lit(3, CODE_EQ_BOTH)], &[0, 1, 2, 3]));
        assert_eq!(ng.dropped, 1);
        assert_eq!(ng.count(), 1);
    }
}
