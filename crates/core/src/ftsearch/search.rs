//! The sequential FT-Search engine (§4.5): depth-first branch-and-bound with
//! the four pruning strategies (CPU, COMPL, COST, DOM).

use super::prep::Prep;
use super::stats::{PruneKind, SearchStats};
use super::{FtSearchConfig, SharedBest};
use std::time::Instant;

/// Domain values of one variable. Encoded in `assign` as `val as u8`;
/// `0` means unassigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Val {
    /// Both replicas active (fully replicated, `φ = 1` under eq. 14).
    Both = 1,
    /// Only replica 0 active.
    Only0 = 2,
    /// Only replica 1 active.
    Only1 = 3,
}

impl Val {
    #[inline]
    fn actives(self) -> &'static [usize] {
        match self {
            Val::Both => &[0, 1],
            Val::Only0 => &[0],
            Val::Only1 => &[1],
        }
    }

    #[inline]
    fn is_both(self) -> bool {
        self == Val::Both
    }
}

/// Relative slack used in floating-point bound comparisons. Running sums are
/// maintained incrementally (with exact recomputation at every incumbent), so
/// bounds can drift by a few ULPs; the slack keeps that drift from causing
/// incorrect prunes.
const BOUND_EPS: f64 = 1e-9;

/// How many nodes between deadline checks.
const TIMEOUT_CHECK_MASK: u64 = 0x1FFF;

/// A complete assignment together with its exact cost and FIC rate.
#[derive(Debug, Clone)]
pub(crate) struct RawSolution {
    /// One `Val as u8` per variable, in `Prep::vars` order.
    pub assign: Vec<u8>,
    /// Exact cost-rate (`Σ P_C·γ·Δ·s`, cost without the `T` factor).
    pub cost_rate: f64,
    /// Exact FIC rate under the pessimistic model (FIC without `T`).
    pub fic_rate: f64,
}

/// The mutable search state of one worker.
pub(crate) struct Engine<'a> {
    prep: &'a Prep,
    opts: &'a FtSearchConfig,
    deadline: Instant,
    start: Instant,
    shared: Option<&'a SharedBest>,

    assign: Vec<u8>,
    /// `host * num_configs + cfg` -> current load (cycles/s).
    host_load: Vec<f64>,
    /// `pe * num_configs + cfg` -> Δ̂ of assigned PEs (stale when unassigned).
    dhat: Vec<f64>,
    /// FIC-rate contribution recorded per variable (for undo).
    fic_contrib: Vec<f64>,
    fic: f64,
    cost: f64,
    /// Upper bound on the FIC-rate still obtainable from unassigned vars.
    ic_ub_rem: f64,
    /// Lower bound on the cost-rate still to be paid by unassigned vars.
    cost_lb_rem: f64,
    /// DOM: `Both` removed from this variable's domain.
    both_removed: Vec<bool>,
    trail: Vec<u32>,

    best: Option<RawSolution>,
    pub(crate) stats: SearchStats,
    timed_out: bool,
}

impl<'a> Engine<'a> {
    pub(crate) fn new(
        prep: &'a Prep,
        opts: &'a FtSearchConfig,
        start: Instant,
        deadline: Instant,
        shared: Option<&'a SharedBest>,
    ) -> Self {
        let nv = prep.num_vars;
        Self {
            prep,
            opts,
            deadline,
            start,
            shared,
            assign: vec![0; nv],
            host_load: vec![0.0; prep.num_hosts * prep.num_configs],
            dhat: vec![0.0; prep.num_pes * prep.num_configs],
            fic_contrib: vec![0.0; nv],
            fic: 0.0,
            cost: 0.0,
            ic_ub_rem: prep.w_ic.iter().sum(),
            cost_lb_rem: prep.total_w_cost,
            both_removed: vec![false; nv],
            trail: Vec::with_capacity(nv),
            best: None,
            stats: SearchStats::default(),
            timed_out: false,
        }
    }

    /// Install a known-feasible solution as the incumbent (greedy seeding).
    /// Does not touch first/best statistics: those track solutions found by
    /// the search itself (Fig. 5 semantics).
    pub(crate) fn set_seed(&mut self, sol: RawSolution) {
        if let Some(sh) = self.shared {
            sh.offer(&sol);
        }
        self.best = Some(sol);
    }

    /// Pre-assign a prefix of variables (used by the parallel splitter).
    /// Returns `false` if the prefix itself is infeasible (prunable).
    pub(crate) fn push_prefix(&mut self, prefix: &[Val]) -> bool {
        for (v, &val) in prefix.iter().enumerate() {
            if self.both_removed[v] && val.is_both() {
                return false; // dominated prefix: nothing worth searching
            }
            if !self.try_assign(v, val) {
                return false;
            }
            if self.opts.prune_compl && self.fic + self.ic_ub_rem < self.goal_lo() {
                self.unassign(v, val);
                return false;
            }
            if val != Val::Both && self.opts.prune_dom {
                self.propagate_dom(v);
            }
        }
        true
    }

    /// Run the search from variable `from` to completion or timeout.
    pub(crate) fn run(&mut self, from: usize) -> (Option<RawSolution>, bool) {
        self.search(from);
        self.stats.proved = !self.timed_out;
        self.stats.elapsed = self.start.elapsed();
        (self.best.take(), self.timed_out)
    }

    #[inline]
    fn goal_lo(&self) -> f64 {
        self.prep.goal_fic * (1.0 - BOUND_EPS) - 1e-12
    }

    /// The cost of the best known solution, local or shared.
    #[inline]
    fn incumbent_cost(&self) -> Option<f64> {
        let local = self.best.as_ref().map(|b| b.cost_rate);
        let shared = self.shared.map(|s| s.cost());
        match (local, shared) {
            (Some(l), Some(s)) => Some(l.min(s)),
            (Some(l), None) => Some(l),
            (None, Some(s)) if s.is_finite() => Some(s),
            _ => None,
        }
    }

    fn check_deadline(&mut self) {
        if self.stats.nodes & TIMEOUT_CHECK_MASK == 0 && Instant::now() >= self.deadline {
            self.timed_out = true;
        }
        if self.opts.node_limit.is_some_and(|n| self.stats.nodes >= n) {
            self.timed_out = true;
        }
        if let Some(s) = self.shared {
            if s.is_cancelled() {
                self.timed_out = true;
            }
        }
    }

    fn search(&mut self, v: usize) {
        if self.timed_out {
            return;
        }
        if v == self.prep.num_vars {
            self.record_leaf();
            return;
        }
        for val in self.value_order(v) {
            self.stats.nodes += 1;
            self.check_deadline();
            if self.timed_out {
                return;
            }
            if !self.try_assign(v, val) {
                continue; // CPU-pruned (recorded inside)
            }

            let height = (self.prep.num_vars - v) as u64;
            // Pruning on IC upper bound (COMPL).
            if self.opts.prune_compl && self.fic + self.ic_ub_rem < self.goal_lo() {
                self.stats.record_prune(PruneKind::Compl, height);
                self.unassign(v, val);
                continue;
            }
            // Pruning on cost lower bound (COST). With a shared incumbent
            // (parallel tie-keeping mode) the cut keeps an eps-slack *above*
            // the bound instead of below it: subtrees that might contain an
            // exact-minimal-cost leaf are always explored no matter how fast
            // another worker tightened the incumbent, which is what makes the
            // parallel result schedule-independent.
            if self.opts.prune_cost {
                if let Some(best) = self.incumbent_cost() {
                    let lb = self.cost + self.cost_lb_rem;
                    let prune = if self.shared.is_some() {
                        lb > best * (1.0 + BOUND_EPS)
                    } else {
                        lb >= best * (1.0 - BOUND_EPS)
                    };
                    if prune {
                        self.stats.record_prune(PruneKind::Cost, height);
                        self.unassign(v, val);
                        continue;
                    }
                }
            }

            let mark = self.trail.len();
            if !val.is_both() && self.opts.prune_dom {
                self.propagate_dom(v);
            }
            self.search(v + 1);
            self.undo_dom(mark);
            self.unassign(v, val);
            if self.timed_out {
                return;
            }
        }
    }

    /// Value order: cheaper single first (the one whose host currently has
    /// the lower load in this configuration), then the other single, then
    /// `Both` — unless DOM removed it. Trying cheap values first makes the
    /// first feasible solution close to optimal in cost (Fig. 5a).
    fn value_order(&self, v: usize) -> impl Iterator<Item = Val> + 'static {
        let var = self.prep.vars[v];
        let pe = var.pe as usize;
        let c = var.cfg.index();
        let nq = self.prep.num_configs;
        let h0 = self.prep.host_of[pe][0] as usize;
        let h1 = self.prep.host_of[pe][1] as usize;
        let l0 = self.host_load[h0 * nq + c];
        let l1 = self.host_load[h1 * nq + c];
        let (first, second) = if l0 <= l1 {
            (Val::Only0, Val::Only1)
        } else {
            (Val::Only1, Val::Only0)
        };
        let include_both = !self.both_removed[v];
        [Some(first), Some(second), include_both.then_some(Val::Both)]
            .into_iter()
            .flatten()
    }

    /// Assign `val` to variable `v`, updating loads, Δ̂, FIC, cost, and
    /// bounds. Returns `false` (state rolled back, prune recorded) if a host
    /// CPU constraint is violated and CPU pruning is enabled. When CPU
    /// pruning is disabled the overload is tolerated here and caught at the
    /// leaf.
    fn try_assign(&mut self, v: usize, val: Val) -> bool {
        let var = self.prep.vars[v];
        let pe = var.pe as usize;
        let c = var.cfg.index();
        let nq = self.prep.num_configs;
        let load = self.prep.replica_load[pe * nq + c];

        // CPU loads.
        let mut overloaded = false;
        for &r in val.actives() {
            let h = self.prep.host_of[pe][r] as usize;
            let slot = h * nq + c;
            self.host_load[slot] += load;
            if self.host_load[slot] >= self.prep.cap[h] {
                overloaded = true;
            }
        }
        if overloaded && self.opts.prune_cpu {
            for &r in val.actives() {
                let h = self.prep.host_of[pe][r] as usize;
                self.host_load[h * nq + c] -= load;
            }
            self.stats
                .record_prune(PruneKind::Cpu, (self.prep.num_vars - v) as u64);
            return false;
        }

        // Δ̂ and FIC (eqs. 6–7): predecessors in this configuration are
        // already assigned (topological order within a configuration).
        let mut received = 0.0;
        let mut weighted = 0.0;
        for e in &self.prep.pe_in[pe] {
            let d = if e.from_source {
                self.prep.source_rate[e.idx as usize * nq + c]
            } else {
                self.dhat[e.idx as usize * nq + c]
            };
            received += d;
            weighted += e.sel * d;
        }
        let phi = if val.is_both() { 1.0 } else { 0.0 };
        self.dhat[pe * nq + c] = phi * weighted;
        let contrib = self.prep.prob[c] * phi * received;
        self.fic_contrib[v] = contrib;
        self.fic += contrib;

        // Cost and bounds.
        let mult = val.actives().len() as f64;
        self.cost += mult * self.prep.w_cost[v];
        self.cost_lb_rem -= self.prep.w_cost[v];
        if !self.both_removed[v] {
            // If DOM removed Both earlier, w_ic[v] was already subtracted.
            self.ic_ub_rem -= self.prep.w_ic[v];
        }

        self.assign[v] = val as u8;
        true
    }

    fn unassign(&mut self, v: usize, val: Val) {
        let var = self.prep.vars[v];
        let pe = var.pe as usize;
        let c = var.cfg.index();
        let nq = self.prep.num_configs;
        let load = self.prep.replica_load[pe * nq + c];
        for &r in val.actives() {
            let h = self.prep.host_of[pe][r] as usize;
            self.host_load[h * nq + c] -= load;
        }
        self.fic -= self.fic_contrib[v];
        self.fic_contrib[v] = 0.0;
        let mult = val.actives().len() as f64;
        self.cost -= mult * self.prep.w_cost[v];
        self.cost_lb_rem += self.prep.w_cost[v];
        if !self.both_removed[v] {
            self.ic_ub_rem += self.prep.w_ic[v];
        }
        self.assign[v] = 0;
    }

    /// Forward domain propagation (DOM, §4.5): after binding `v` to a
    /// single-replica value, recursively remove `Both` from successors whose
    /// predecessors are all "dead" in this configuration (no source inputs
    /// and every PE input with `Δ̂ = 0` or doomed to it).
    fn propagate_dom(&mut self, v: usize) {
        let var = self.prep.vars[v];
        let c = var.cfg.index();
        let nq = self.prep.num_configs;
        let mut stack: Vec<u32> = self.prep.pe_succ[var.pe as usize].clone();
        while let Some(succ) = stack.pop() {
            let u = self.prep.var_index[succ as usize * nq + c];
            if self.assign[u] != 0 || self.both_removed[u] {
                continue;
            }
            let mut all_dead = true;
            for e in &self.prep.pe_in[succ as usize] {
                if e.from_source {
                    all_dead = false;
                    break;
                }
                let p = e.idx as usize;
                let pv = self.prep.var_index[p * nq + c];
                let dead = if self.assign[pv] != 0 {
                    self.dhat[p * nq + c] == 0.0
                } else {
                    self.both_removed[pv]
                };
                if !dead {
                    all_dead = false;
                    break;
                }
            }
            if all_dead {
                self.both_removed[u] = true;
                self.ic_ub_rem -= self.prep.w_ic[u];
                self.trail.push(u as u32);
                self.stats
                    .record_prune(PruneKind::Dom, (self.prep.num_vars - u) as u64);
                for &s2 in &self.prep.pe_succ[succ as usize] {
                    stack.push(s2);
                }
            }
        }
    }

    fn undo_dom(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let u = self.trail.pop().unwrap() as usize;
            self.both_removed[u] = false;
            self.ic_ub_rem += self.prep.w_ic[u];
        }
    }

    /// A complete assignment was reached: recompute FIC/cost exactly (kills
    /// incremental drift), re-validate, and record if improving.
    fn record_leaf(&mut self) {
        let (cost, fic, max_rel_load) = self.recompute_exact();
        if fic < self.prep.goal_fic * (1.0 - BOUND_EPS) {
            // Only reachable when COMPL pruning is disabled (ablation mode).
            return;
        }
        if max_rel_load >= 1.0 {
            // Only reachable when CPU pruning is disabled (ablation mode).
            return;
        }
        let incumbent = self.incumbent_cost();
        let improving = match incumbent {
            Some(b) => cost < b * (1.0 - BOUND_EPS),
            None => true,
        };
        if self.shared.is_none() {
            // Sequential mode: strict improvement or nothing.
            if !improving {
                return;
            }
            self.note_solution(cost, true);
            self.best = Some(RawSolution {
                assign: self.assign.clone(),
                cost_rate: cost,
                fic_rate: fic,
            });
            return;
        }
        // Parallel tie-keeping mode: keep every leaf within the eps-band of
        // the incumbent (the tie-keeping COST cut guarantees such leaves are
        // always reached) and resolve ties by the total order, so the final
        // incumbent does not depend on which worker got there first.
        let keep = match incumbent {
            Some(b) => cost <= b * (1.0 + BOUND_EPS),
            None => true,
        };
        if !keep {
            return;
        }
        self.note_solution(cost, improving);
        let sol = RawSolution {
            assign: self.assign.clone(),
            cost_rate: cost,
            fic_rate: fic,
        };
        if let Some(sh) = self.shared {
            sh.offer(&sol);
        }
        let replace = match &self.best {
            Some(b) => super::better_solution(&sol, b),
            None => true,
        };
        if replace {
            self.best = Some(sol);
        }
    }

    /// Update first/best statistics for a kept leaf. `improving` preserves
    /// the historical semantics: only strict cost improvements count as
    /// improvements or move `time_to_best` (tie-kept equal-cost solutions
    /// do not).
    fn note_solution(&mut self, cost: f64, improving: bool) {
        let now = self.start.elapsed();
        if self.stats.time_to_first.is_none() {
            self.stats.time_to_first = Some(now);
            self.stats.first_cost = Some(cost);
        }
        if improving {
            self.stats.time_to_best = Some(now);
            self.stats.best_cost = Some(cost);
            self.stats.improvements += 1;
        }
    }

    /// Exact (non-incremental) evaluation of the current complete assignment.
    /// Returns `(cost_rate, fic_rate, max load/capacity ratio)`.
    fn recompute_exact(&self) -> (f64, f64, f64) {
        evaluate_assignment(self.prep, &self.assign)
    }
}

/// Exact evaluation of a complete assignment: `(cost_rate, fic_rate,
/// max load/capacity ratio over hosts and configurations)`. Shared by the
/// engine's leaf check and the greedy incumbent seeding.
pub(crate) fn evaluate_assignment(p: &Prep, assign: &[u8]) -> (f64, f64, f64) {
    let nq = p.num_configs;
    let mut cost = 0.0;
    let mut fic = 0.0;
    let mut host_load = vec![0.0f64; p.num_hosts * nq];
    let mut dhat = vec![0.0f64; p.num_pes * nq];
    for c in 0..nq {
        // PEs in topological (dense) order.
        for pe in 0..p.num_pes {
            let v = p.var_index[pe * nq + c];
            let val = assign[v];
            debug_assert_ne!(val, 0);
            let both = val == Val::Both as u8;
            let mut received = 0.0;
            let mut weighted = 0.0;
            for e in &p.pe_in[pe] {
                let d = if e.from_source {
                    p.source_rate[e.idx as usize * nq + c]
                } else {
                    dhat[e.idx as usize * nq + c]
                };
                received += d;
                weighted += e.sel * d;
            }
            let phi = if both { 1.0 } else { 0.0 };
            dhat[pe * nq + c] = phi * weighted;
            fic += p.prob[c] * phi * received;
            let mult = if both { 2.0 } else { 1.0 };
            cost += mult * p.w_cost[v];
            let load = p.replica_load[pe * nq + c];
            match val {
                x if x == Val::Both as u8 => {
                    host_load[p.host_of[pe][0] as usize * nq + c] += load;
                    host_load[p.host_of[pe][1] as usize * nq + c] += load;
                }
                x if x == Val::Only0 as u8 => {
                    host_load[p.host_of[pe][0] as usize * nq + c] += load;
                }
                _ => {
                    host_load[p.host_of[pe][1] as usize * nq + c] += load;
                }
            }
        }
    }
    let mut max_rel = 0.0f64;
    for h in 0..p.num_hosts {
        for c in 0..nq {
            let rel = host_load[h * nq + c] / p.cap[h];
            max_rel = max_rel.max(rel);
        }
    }
    (cost, fic, max_rel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ftsearch::FtSearchConfig;
    use crate::testutil::fig2_problem;
    use std::time::Duration;

    fn run_fig2(ic: f64) -> (Option<RawSolution>, SearchStats) {
        let p = fig2_problem(ic);
        let prep = Prep::build(&p);
        let opts = FtSearchConfig::default();
        let start = Instant::now();
        let deadline = start + Duration::from_secs(10);
        let mut eng = Engine::new(&prep, &opts, start, deadline, None);
        let (sol, timed_out) = eng.run(0);
        assert!(!timed_out);
        (sol, eng.stats)
    }

    #[test]
    fn fig2_ic06_finds_fig2b_like_solution() {
        let (sol, stats) = run_fig2(0.6);
        let sol = sol.expect("feasible");
        assert!(stats.proved);
        // IC must be at least 0.6 of BIC-rate 9.6.
        assert!(sol.fic_rate >= 0.6 * 9.6 - 1e-9);
        // Optimal: fully replicate in Low (0.8 * 2 PEs * 400 * 2 replicas),
        // single replicas at High (0.2 * 2 * 800): cost = 1280 + 320 = 1600.
        assert!((sol.cost_rate - 1600.0).abs() < 1e-6, "{}", sol.cost_rate);
    }

    #[test]
    fn fig2_ic_zero_single_replicas_everywhere() {
        let (sol, _) = run_fig2(0.0);
        let sol = sol.expect("feasible");
        // Cheapest valid strategy: one replica everywhere.
        // cost = 0.8*2*400 + 0.2*2*800 = 640 + 320 = 960.
        assert!((sol.cost_rate - 960.0).abs() < 1e-6, "{}", sol.cost_rate);
    }

    #[test]
    fn fig2_high_ic_is_infeasible() {
        // Full replication at High is impossible (hosts overload), so any
        // IC above the Low-only share (2/3) cannot be guaranteed.
        let (sol, stats) = run_fig2(0.9);
        assert!(sol.is_none());
        assert!(stats.proved);
    }

    #[test]
    fn fig2_boundary_ic_two_thirds_feasible() {
        let (sol, _) = run_fig2(2.0 / 3.0);
        assert!(sol.is_some());
    }

    #[test]
    fn stats_record_pruning() {
        let (_, stats) = run_fig2(0.6);
        assert!(stats.nodes > 0);
        let total_prunes: u64 = stats.prunes.iter().sum();
        assert!(total_prunes > 0, "expected some pruning on fig2");
    }

    #[test]
    fn first_solution_not_cheaper_than_best() {
        let (_, stats) = run_fig2(0.6);
        if let Some(r) = stats.first_to_best_cost_ratio() {
            assert!(r >= 1.0 - 1e-9);
        }
    }
}
