//! The sequential FT-Search engine (§4.5): depth-first branch-and-bound with
//! the four pruning strategies (CPU, COMPL, COST, DOM), extensible with the
//! CP-style machinery (nogood store, activity-guided ordering, guided/dive
//! value policies, LNS variable freezing) used by `cp.rs`.

use super::cp::Activity;
use super::nogood::{self, NogoodStore};
use super::prep::Prep;
use super::stats::{PruneKind, SearchStats};
use super::{FtSearchConfig, SharedBest};
use std::time::Instant;

/// Domain values of one variable. Encoded in `assign` as `val as u8`;
/// `0` means unassigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Val {
    /// Both replicas active (fully replicated, `φ = 1` under eq. 14).
    Both = 1,
    /// Only replica 0 active.
    Only0 = 2,
    /// Only replica 1 active.
    Only1 = 3,
}

impl Val {
    #[inline]
    fn actives(self) -> &'static [usize] {
        match self {
            Val::Both => &[0, 1],
            Val::Only0 => &[0],
            Val::Only1 => &[1],
        }
    }

    #[inline]
    fn is_both(self) -> bool {
        self == Val::Both
    }

    /// Decode the `assign`-array encoding (panics on 0 = unassigned).
    #[inline]
    pub(crate) fn from_u8(x: u8) -> Val {
        match x {
            1 => Val::Both,
            2 => Val::Only0,
            3 => Val::Only1,
            _ => unreachable!("unassigned value has no Val"),
        }
    }
}

/// Order in which values of a variable are tried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ValuePolicy {
    /// Legacy order: cheaper single first, then the other single, then
    /// `Both`. First feasible solution is close to optimal in cost (Fig. 5a).
    CheapFirst,
    /// `Both` first (unless DOM removed it), then the singles — a FIC-greedy
    /// dive that reaches a high-IC (feasible) leaf quickly on large
    /// instances where no incumbent exists yet.
    BothFirst,
    /// The guide assignment's value first, then the legacy order — used to
    /// re-solve around an incumbent (LNS / warm restarts).
    Guided,
}

/// Relative slack used in floating-point bound comparisons. Running sums are
/// maintained incrementally (with exact recomputation at every incumbent), so
/// bounds can drift by a few ULPs; the slack keeps that drift from causing
/// incorrect prunes.
const BOUND_EPS: f64 = 1e-9;

/// How many nodes between deadline checks.
const TIMEOUT_CHECK_MASK: u64 = 0x1FFF;

/// A complete assignment together with its exact cost and FIC rate.
#[derive(Debug, Clone)]
pub(crate) struct RawSolution {
    /// One `Val as u8` per variable, in `Prep::vars` order.
    pub assign: Vec<u8>,
    /// Exact cost-rate (`Σ P_C·γ·Δ·s`, cost without the `T` factor).
    pub cost_rate: f64,
    /// Exact FIC rate under the pessimistic model (FIC without `T`).
    pub fic_rate: f64,
}

/// The mutable search state of one worker.
pub(crate) struct Engine<'a> {
    prep: &'a Prep,
    opts: &'a FtSearchConfig,
    deadline: Instant,
    start: Instant,
    shared: Option<&'a SharedBest>,

    assign: Vec<u8>,
    /// `host * num_configs + cfg` -> current load (cycles/s).
    host_load: Vec<f64>,
    /// `pe * num_configs + cfg` -> Δ̂ of assigned PEs (stale when unassigned).
    dhat: Vec<f64>,
    /// FIC-rate contribution recorded per variable (for undo).
    fic_contrib: Vec<f64>,
    fic: f64,
    cost: f64,
    /// Upper bound on the FIC-rate still obtainable from unassigned vars.
    /// Chain-aware: the credit of each open variable is
    /// `P_C(c) · rcv_ub[pe, c]`, not its static `w_ic` — a single upstream
    /// zeroes the achievable receive rate of its whole descendant chain.
    ic_ub_rem: f64,
    /// Per-configuration split of `fic` and `ic_ub_rem` (indexed by
    /// `ConfigId`): the refined COMPL bound caps each configuration's term
    /// at its capacity knapsack bound, `Σ_c min(fic_c + ub_c, kub_c)`.
    fic_by_cfg: Vec<f64>,
    ic_ub_by_cfg: Vec<f64>,
    /// Lower bound on the cost-rate still to be paid by unassigned vars.
    cost_lb_rem: f64,
    /// Upper bound on what `(pe, cfg)` can still receive given the singles
    /// and DOM removals committed so far (all-`Both` optimistic elsewhere).
    rcv_ub: Vec<f64>,
    /// Upper bound on `Δ̂(pe, cfg)` under the same assumption. Frozen to 0
    /// (and propagated downstream) when the variable goes single or loses
    /// `Both` to DOM.
    dhat_ub: Vec<f64>,
    /// `dhat_ub` value saved when a variable was assigned single (undo).
    dhat_ub_saved: Vec<f64>,
    /// Scratch stack for `propagate_dhat_ub` (avoids per-call allocation).
    prop_stack: Vec<(u32, f64)>,
    /// DOM: `Both` removed from this variable's domain.
    both_removed: Vec<bool>,
    trail: Vec<DomUndo>,

    best: Option<RawSolution>,
    pub(crate) stats: SearchStats,
    timed_out: bool,

    // --- CP extensions (all default-off: the legacy DFS path is unchanged) ---
    /// Exploration order (position -> variable); `None` = identity. Any
    /// permutation whose per-configuration restriction is topological is
    /// legal (incremental Δ̂ and DOM need predecessors assigned first).
    order: Option<&'a [u32]>,
    /// LNS freeze mask: non-zero entries pin the variable to that value.
    fixed: Option<&'a [u8]>,
    /// Value to try first under `ValuePolicy::Guided`.
    guide: Option<&'a [u8]>,
    value_policy: ValuePolicy,
    /// Tie-keeping leaf/COST semantics (deterministic parallel mode).
    tie_keeping: bool,
    /// Stop as soon as any solution is installed (first-incumbent dive).
    stop_on_solution: bool,
    /// Per-run node budget (the CP driver meters restarts/LNS with this;
    /// independent of `opts.node_limit`, which callers use as a global cap).
    node_budget: Option<u64>,
    nogoods: Option<&'a mut NogoodStore>,
    /// Learn new nogoods at CPU/COMPL violations (store may also be consulted
    /// read-only with learning off).
    learn: bool,
    activity: Option<&'a mut Activity>,
    /// Assignment depth per variable (valid while assigned).
    depth_of: Vec<u32>,
    num_assigned: u32,
    /// Σ w_ic over assigned single-valued variables, and their count —
    /// the O(1) gate for COMPL reason extraction.
    singles_ic: f64,
    singles_cnt: u32,
    /// Assigned replicas contributing to each `(host, cfg)` slot — the O(1)
    /// gate for CPU reason extraction.
    slot_assigned: Vec<u16>,
}

/// One DOM removal on the trail: the exact IC credit subtracted and the
/// `dhat_ub` frozen at removal time, so undo restores bit-identical state.
#[derive(Debug, Clone, Copy)]
struct DomUndo {
    var: u32,
    credit: f64,
    dhat_saved: f64,
}

/// Skip CPU reason extraction when more than this many replicas sit on the
/// overloaded slot (the minimized reason would likely be long and weak).
const MAX_CPU_REASON: usize = 24;
/// Skip COMPL reason extraction beyond this many assigned singles.
const MAX_COMPL_SCAN: u32 = 64;

impl<'a> Engine<'a> {
    pub(crate) fn new(
        prep: &'a Prep,
        opts: &'a FtSearchConfig,
        start: Instant,
        deadline: Instant,
        shared: Option<&'a SharedBest>,
    ) -> Self {
        let nv = prep.num_vars;
        // Chain-aware bound init: with every variable still open, the best
        // case is all-`Both`, so receive/Δ̂ upper bounds flow unattenuated
        // through the DAG (dense PE index == topological rank).
        let nq = prep.num_configs;
        let mut rcv_ub = vec![0.0; prep.num_pes * nq];
        let mut dhat_ub = vec![0.0; prep.num_pes * nq];
        let mut ic_ub_rem = 0.0;
        let mut ic_ub_by_cfg = vec![0.0; nq];
        for c in 0..nq {
            for pe in 0..prep.num_pes {
                let mut received = 0.0;
                let mut weighted = 0.0;
                for e in &prep.pe_in[pe] {
                    let d = if e.from_source {
                        prep.source_rate[e.idx as usize * nq + c]
                    } else {
                        dhat_ub[e.idx as usize * nq + c]
                    };
                    received += d;
                    weighted += e.sel * d;
                }
                rcv_ub[pe * nq + c] = received;
                dhat_ub[pe * nq + c] = weighted;
                ic_ub_rem += prep.prob[c] * received;
                ic_ub_by_cfg[c] += prep.prob[c] * received;
            }
        }
        Self {
            prep,
            opts,
            deadline,
            start,
            shared,
            assign: vec![0; nv],
            host_load: vec![0.0; prep.num_hosts * prep.num_configs],
            dhat: vec![0.0; prep.num_pes * prep.num_configs],
            fic_contrib: vec![0.0; nv],
            fic: 0.0,
            cost: 0.0,
            ic_ub_rem,
            fic_by_cfg: vec![0.0; nq],
            ic_ub_by_cfg,
            cost_lb_rem: prep.total_w_cost,
            rcv_ub,
            dhat_ub,
            dhat_ub_saved: vec![0.0; nv],
            prop_stack: Vec::new(),
            both_removed: vec![false; nv],
            trail: Vec::with_capacity(nv),
            best: None,
            stats: SearchStats::default(),
            timed_out: false,
            order: None,
            fixed: None,
            guide: None,
            value_policy: ValuePolicy::CheapFirst,
            tie_keeping: shared.is_some(),
            stop_on_solution: false,
            node_budget: None,
            nogoods: None,
            learn: false,
            activity: None,
            depth_of: vec![0; nv],
            num_assigned: 0,
            singles_ic: 0.0,
            singles_cnt: 0,
            slot_assigned: vec![0; prep.num_hosts * prep.num_configs],
        }
    }

    /// Set the exploration order (must be topological per configuration).
    pub(crate) fn set_order(&mut self, order: &'a [u32]) {
        debug_assert_eq!(order.len(), self.prep.num_vars);
        self.order = Some(order);
    }

    /// Freeze variables with non-zero entries to the given values (LNS).
    pub(crate) fn set_fixed(&mut self, fixed: &'a [u8]) {
        self.fixed = Some(fixed);
    }

    /// Guide assignment for `ValuePolicy::Guided`.
    pub(crate) fn set_guide(&mut self, guide: &'a [u8]) {
        self.guide = Some(guide);
    }

    pub(crate) fn set_value_policy(&mut self, policy: ValuePolicy) {
        self.value_policy = policy;
    }

    /// Attach a nogood store; `learn` additionally records new nogoods at
    /// CPU/COMPL violations.
    pub(crate) fn set_nogoods(&mut self, store: &'a mut NogoodStore, learn: bool) {
        self.nogoods = Some(store);
        self.learn = learn;
    }

    pub(crate) fn set_activity(&mut self, act: &'a mut Activity) {
        self.activity = Some(act);
    }

    /// Override the leaf/COST semantics chosen by `new` (portfolio workers
    /// share an incumbent but keep the strict sequential cut).
    pub(crate) fn set_tie_keeping(&mut self, tie_keeping: bool) {
        self.tie_keeping = tie_keeping;
    }

    pub(crate) fn set_stop_on_solution(&mut self, stop: bool) {
        self.stop_on_solution = stop;
    }

    pub(crate) fn set_node_budget(&mut self, nodes: u64) {
        self.node_budget = Some(nodes);
    }

    /// Install a known-feasible solution as the incumbent (greedy seeding).
    /// Does not touch first/best statistics: those track solutions found by
    /// the search itself (Fig. 5 semantics).
    pub(crate) fn set_seed(&mut self, sol: RawSolution) {
        if let Some(sh) = self.shared {
            sh.offer(&sol);
        }
        self.best = Some(sol);
    }

    /// Pre-assign a prefix of variables (used by the parallel splitter).
    /// Returns `false` if the prefix itself is infeasible (prunable).
    pub(crate) fn push_prefix(&mut self, prefix: &[Val]) -> bool {
        for (v, &val) in prefix.iter().enumerate() {
            if self.both_removed[v] && val.is_both() {
                return false; // dominated prefix: nothing worth searching
            }
            if !self.try_assign(v, val, (self.prep.num_vars - v) as u64) {
                return false;
            }
            if self.opts.prune_compl && self.compl_violated() {
                self.unassign(v, val);
                return false;
            }
            if self.opts.prune_cpu {
                self.propagate_cap(v);
            }
            if val != Val::Both && self.opts.prune_dom {
                self.propagate_dom(v);
            }
        }
        true
    }

    /// Run the search from variable `from` to completion or timeout.
    pub(crate) fn run(&mut self, from: usize) -> (Option<RawSolution>, bool) {
        self.search(from);
        self.stats.proved = !self.timed_out;
        self.stats.elapsed = self.start.elapsed();
        (self.best.take(), self.timed_out)
    }

    #[inline]
    fn goal_lo(&self) -> f64 {
        self.prep.goal_fic * (1.0 - BOUND_EPS) - 1e-12
    }

    /// COMPL violation test: the cheap global chain bound first, then the
    /// refined per-configuration form capping each term at its capacity
    /// knapsack bound (`Σ_c min(fic_c + ub_c, kub_c)` — both are valid
    /// upper bounds on the configuration's final contribution, so their
    /// minimum is too).
    #[inline]
    fn compl_violated(&self) -> bool {
        let lo = self.goal_lo();
        if self.fic + self.ic_ub_rem < lo {
            return true;
        }
        let mut bound = 0.0;
        for c in 0..self.prep.num_configs {
            bound += (self.fic_by_cfg[c] + self.ic_ub_by_cfg[c]).min(self.prep.kub[c]);
        }
        bound < lo
    }

    /// The cost of the best known solution, local or shared.
    #[inline]
    fn incumbent_cost(&self) -> Option<f64> {
        let local = self.best.as_ref().map(|b| b.cost_rate);
        let shared = self.shared.map(|s| s.cost());
        match (local, shared) {
            (Some(l), Some(s)) => Some(l.min(s)),
            (Some(l), None) => Some(l),
            (None, Some(s)) if s.is_finite() => Some(s),
            _ => None,
        }
    }

    fn check_deadline(&mut self) {
        if self.stats.nodes & TIMEOUT_CHECK_MASK == 0 && Instant::now() >= self.deadline {
            self.timed_out = true;
        }
        if self.opts.node_limit.is_some_and(|n| self.stats.nodes >= n) {
            self.timed_out = true;
        }
        if self.node_budget.is_some_and(|n| self.stats.nodes >= n) {
            self.timed_out = true;
        }
        if let Some(s) = self.shared {
            if s.is_cancelled() {
                self.timed_out = true;
            }
        }
    }

    fn search(&mut self, pos: usize) {
        if self.timed_out {
            return;
        }
        if pos == self.prep.num_vars {
            self.record_leaf();
            return;
        }
        let v = match self.order {
            Some(o) => o[pos] as usize,
            None => pos,
        };
        for val in self.value_order(v) {
            self.stats.nodes += 1;
            self.check_deadline();
            if self.timed_out {
                return;
            }
            let height = (self.prep.num_vars - pos) as u64;
            // Nogood store: would this value complete a refuted prefix?
            if let Some(ng) = &self.nogoods {
                if ng.is_forbidden(v as u32, val) {
                    self.stats.record_prune(PruneKind::Nogood, height);
                    self.bump_conflict(&[v as u32]);
                    continue;
                }
            }
            if !self.try_assign(v, val, height) {
                continue; // CPU-pruned (recorded inside)
            }
            let ng_mark = self.nogoods.as_ref().map(|ng| ng.mark());
            if self.ng_on_assign(v, val) {
                // The assignment completed a nogood the pre-check could not
                // see yet (watches were not unit before this literal).
                self.stats.record_prune(PruneKind::Nogood, height);
                self.bump_conflict(&[v as u32]);
                self.ng_undo(ng_mark);
                self.unassign(v, val);
                continue;
            }

            // Pruning on IC upper bound (COMPL).
            if self.opts.prune_compl && self.compl_violated() {
                self.stats.record_prune(PruneKind::Compl, height);
                self.learn_compl(v);
                self.ng_undo(ng_mark);
                self.unassign(v, val);
                continue;
            }
            // Pruning on cost lower bound (COST). With tie-keeping semantics
            // (deterministic parallel mode) the cut keeps an eps-slack
            // *above* the bound instead of below it: subtrees that might
            // contain an exact-minimal-cost leaf are always explored no
            // matter how fast another worker tightened the incumbent, which
            // is what makes the parallel result schedule-independent. COST
            // cuts are incumbent-dependent and must never become nogoods.
            if self.opts.prune_cost {
                if let Some(best) = self.incumbent_cost() {
                    let lb = self.cost + self.cost_lb_rem;
                    let prune = if self.tie_keeping {
                        lb > best * (1.0 + BOUND_EPS)
                    } else {
                        lb >= best * (1.0 - BOUND_EPS)
                    };
                    if prune {
                        self.stats.record_prune(PruneKind::Cost, height);
                        self.ng_undo(ng_mark);
                        self.unassign(v, val);
                        continue;
                    }
                }
            }

            let mark = self.trail.len();
            if self.opts.prune_cpu {
                self.propagate_cap(v);
            }
            if !val.is_both() && self.opts.prune_dom {
                self.propagate_dom(v);
            }
            // Re-check COMPL: CAP/DOM propagation may have collapsed enough
            // chain credit to refute the subtree before descending.
            if self.opts.prune_compl && self.compl_violated() {
                self.stats.record_prune(PruneKind::Compl, height);
                self.learn_compl(v);
                self.undo_dom(mark);
                self.ng_undo(ng_mark);
                self.unassign(v, val);
                continue;
            }
            self.search(pos + 1);
            self.undo_dom(mark);
            self.ng_undo(ng_mark);
            self.unassign(v, val);
            if self.timed_out {
                return;
            }
        }
    }

    /// Forward `on_assign` to the attached nogood store (no-op without one).
    #[inline]
    fn ng_on_assign(&mut self, v: usize, val: Val) -> bool {
        match self.nogoods.as_deref_mut() {
            Some(ng) => ng.on_assign(v as u32, val, &self.assign),
            None => false,
        }
    }

    #[inline]
    fn ng_undo(&mut self, mark: Option<usize>) {
        if let (Some(ng), Some(m)) = (self.nogoods.as_deref_mut(), mark) {
            ng.undo_to(m);
        }
    }

    /// Bump activity of the variables blamed for a conflict and decay.
    #[inline]
    fn bump_conflict(&mut self, vars: &[u32]) {
        if let Some(act) = self.activity.as_deref_mut() {
            for &v in vars {
                act.bump(v as usize);
            }
            act.decay();
        }
    }

    /// Value order for variable `v` under the active policy (see
    /// [`ValuePolicy`]); a non-zero `fixed` entry pins the variable instead.
    fn value_order(&self, v: usize) -> impl Iterator<Item = Val> + 'static {
        self.value_slots(v).into_iter().flatten()
    }

    fn value_slots(&self, v: usize) -> [Option<Val>; 3] {
        let include_both = !self.both_removed[v];
        if let Some(f) = self.fixed {
            if f[v] != 0 {
                let val = Val::from_u8(f[v]);
                if val.is_both() && !include_both {
                    return [None; 3]; // DOM killed the pinned value
                }
                return [Some(val), None, None];
            }
        }
        // Cheaper single first: the one whose host currently has the lower
        // load in this configuration. Trying cheap values first makes the
        // first feasible solution close to optimal in cost (Fig. 5a).
        let var = self.prep.vars[v];
        let pe = var.pe as usize;
        let c = var.cfg.index();
        let nq = self.prep.num_configs;
        let h0 = self.prep.host_of[pe][0] as usize;
        let h1 = self.prep.host_of[pe][1] as usize;
        let l0 = self.host_load[h0 * nq + c];
        let l1 = self.host_load[h1 * nq + c];
        let (cheap, other) = if l0 <= l1 {
            (Val::Only0, Val::Only1)
        } else {
            (Val::Only1, Val::Only0)
        };
        match self.value_policy {
            ValuePolicy::CheapFirst => {
                [Some(cheap), Some(other), include_both.then_some(Val::Both)]
            }
            ValuePolicy::BothFirst => {
                if include_both {
                    [Some(Val::Both), Some(cheap), Some(other)]
                } else {
                    [Some(cheap), Some(other), None]
                }
            }
            ValuePolicy::Guided => {
                let g = self.guide.map_or(0, |g| g[v]);
                if g == 0 || (g == Val::Both as u8 && !include_both) {
                    return [Some(cheap), Some(other), include_both.then_some(Val::Both)];
                }
                let gval = Val::from_u8(g);
                let mut out = [Some(gval), None, None];
                let mut k = 1;
                for cand in [cheap, other] {
                    if cand != gval {
                        out[k] = Some(cand);
                        k += 1;
                    }
                }
                if include_both && gval != Val::Both {
                    out[k] = Some(Val::Both);
                }
                out
            }
        }
    }

    /// Assign `val` to variable `v`, updating loads, Δ̂, FIC, cost, and
    /// bounds. Returns `false` (state rolled back, prune recorded) if a host
    /// CPU constraint is violated and CPU pruning is enabled. When CPU
    /// pruning is disabled the overload is tolerated here and caught at the
    /// leaf.
    fn try_assign(&mut self, v: usize, val: Val, height: u64) -> bool {
        let var = self.prep.vars[v];
        let pe = var.pe as usize;
        let c = var.cfg.index();
        let nq = self.prep.num_configs;
        let load = self.prep.replica_load[pe * nq + c];

        // CPU loads.
        let mut over_host: Option<usize> = None;
        for &r in val.actives() {
            let h = self.prep.host_of[pe][r] as usize;
            let slot = h * nq + c;
            self.host_load[slot] += load;
            if self.host_load[slot] >= self.prep.cap[h] && over_host.is_none() {
                over_host = Some(h);
            }
        }
        if let Some(h) = over_host {
            if self.opts.prune_cpu {
                for &r in val.actives() {
                    let hh = self.prep.host_of[pe][r] as usize;
                    self.host_load[hh * nq + c] -= load;
                }
                self.stats.record_prune(PruneKind::Cpu, height);
                self.learn_cpu(v, val, h);
                return false;
            }
        }
        for &r in val.actives() {
            let h = self.prep.host_of[pe][r] as usize;
            self.slot_assigned[h * nq + c] += 1;
        }

        // Δ̂ and FIC (eqs. 6–7): predecessors in this configuration are
        // already assigned (topological order within a configuration).
        let mut received = 0.0;
        let mut weighted = 0.0;
        for e in &self.prep.pe_in[pe] {
            let d = if e.from_source {
                self.prep.source_rate[e.idx as usize * nq + c]
            } else {
                self.dhat[e.idx as usize * nq + c]
            };
            received += d;
            weighted += e.sel * d;
        }
        let phi = if val.is_both() { 1.0 } else { 0.0 };
        self.dhat[pe * nq + c] = phi * weighted;
        let contrib = self.prep.prob[c] * phi * received;
        self.fic_contrib[v] = contrib;
        self.fic += contrib;
        self.fic_by_cfg[c] += contrib;

        // Cost and bounds.
        let mult = val.actives().len() as f64;
        self.cost += mult * self.prep.w_cost[v];
        self.cost_lb_rem -= self.prep.w_cost[v];
        if !self.both_removed[v] {
            // If DOM removed Both earlier, the credit was already subtracted
            // (and `dhat_ub` frozen) at removal time.
            let credit = self.prep.prob[c] * self.rcv_ub[pe * nq + c];
            self.ic_ub_rem -= credit;
            self.ic_ub_by_cfg[c] -= credit;
        }
        if !val.is_both() {
            // A single contributes nothing and zeroes Δ̂: freeze this slot's
            // Δ̂ upper bound and shrink every descendant's receive credit.
            let saved = self.dhat_ub[pe * nq + c];
            self.dhat_ub_saved[v] = saved;
            if saved != 0.0 {
                self.dhat_ub[pe * nq + c] = 0.0;
                self.propagate_dhat_ub(pe, c, -saved);
            }
            self.singles_ic += self.prep.w_ic[v];
            self.singles_cnt += 1;
        }

        self.depth_of[v] = self.num_assigned;
        self.num_assigned += 1;
        self.assign[v] = val as u8;
        true
    }

    fn unassign(&mut self, v: usize, val: Val) {
        let var = self.prep.vars[v];
        let pe = var.pe as usize;
        let c = var.cfg.index();
        let nq = self.prep.num_configs;
        let load = self.prep.replica_load[pe * nq + c];
        for &r in val.actives() {
            let h = self.prep.host_of[pe][r] as usize;
            self.host_load[h * nq + c] -= load;
            self.slot_assigned[h * nq + c] -= 1;
        }
        self.fic -= self.fic_contrib[v];
        self.fic_by_cfg[c] -= self.fic_contrib[v];
        self.fic_contrib[v] = 0.0;
        let mult = val.actives().len() as f64;
        self.cost -= mult * self.prep.w_cost[v];
        self.cost_lb_rem += self.prep.w_cost[v];
        if !val.is_both() {
            // Reverse the Δ̂ freeze. Linearity of the additive propagation
            // plus LIFO discipline makes the restore exact.
            let saved = self.dhat_ub_saved[v];
            if saved != 0.0 {
                self.propagate_dhat_ub(pe, c, saved);
                self.dhat_ub[pe * nq + c] = saved;
            }
            self.singles_ic -= self.prep.w_ic[v];
            self.singles_cnt -= 1;
        }
        if !self.both_removed[v] {
            // `rcv_ub` of this slot is untouched while `v` is assigned
            // (predecessors topologically precede it), so this re-adds
            // exactly what `try_assign` subtracted.
            let credit = self.prep.prob[c] * self.rcv_ub[pe * nq + c];
            self.ic_ub_rem += credit;
            self.ic_ub_by_cfg[c] += credit;
        }
        self.num_assigned -= 1;
        self.assign[v] = 0;
    }

    /// Learn a minimized nogood from a CPU violation: the smallest set of
    /// currently-assigned replicas (plus the tentative `(v, val)`) whose load
    /// alone overflows host `h` in `v`'s configuration. Any completion
    /// keeping those replicas on `h` carries at least that load, so the
    /// subtree is refuted regardless of everything else — sound across
    /// restarts, LNS neighborhoods, and portfolio workers. A relative margin
    /// on the capacity absorbs incremental-float drift.
    fn learn_cpu(&mut self, v: usize, val: Val, h: usize) {
        let can_learn = self.learn && self.nogoods.as_ref().is_some_and(|ng| ng.has_room());
        let var = self.prep.vars[v];
        let c = var.cfg.index();
        let nq = self.prep.num_configs;
        if !can_learn || self.slot_assigned[h * nq + c] as usize + 2 > MAX_CPU_REASON {
            self.bump_conflict(&[v as u32]);
            return;
        }
        // Gather contributors to (h, c): assigned vars with a replica there,
        // plus the tentative assignment itself.
        let mut cand: Vec<(f64, u32)> = Vec::with_capacity(8);
        for pe in 0..self.prep.num_pes {
            let u = self.prep.var_index[pe * nq + c];
            let a = if u == v { val as u8 } else { self.assign[u] };
            if a == 0 {
                continue;
            }
            let load = self.prep.replica_load[pe * nq + c];
            let h0 = self.prep.host_of[pe][0] as usize;
            let h1 = self.prep.host_of[pe][1] as usize;
            let a = Val::from_u8(a);
            let (contrib, code) = if h0 == h && h1 == h {
                // Both replicas live on `h`: `Both` contributes twice.
                match a {
                    Val::Both => (2.0 * load, nogood::CODE_EQ_BOTH),
                    Val::Only0 => (load, nogood::CODE_COV0),
                    Val::Only1 => (load, nogood::CODE_COV1),
                }
            } else if h0 == h {
                match a {
                    Val::Both | Val::Only0 => (load, nogood::CODE_COV0),
                    Val::Only1 => continue,
                }
            } else if h1 == h {
                match a {
                    Val::Both | Val::Only1 => (load, nogood::CODE_COV1),
                    Val::Only0 => continue,
                }
            } else {
                continue;
            };
            cand.push((contrib, nogood::lit(u as u32, code)));
        }
        // Largest contributors first; deterministic tie-break on the literal.
        cand.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let target = self.prep.cap[h] * (1.0 + BOUND_EPS);
        let mut sum = 0.0;
        let mut lits: Vec<u32> = Vec::with_capacity(cand.len().min(8));
        for &(contrib, l) in &cand {
            sum += contrib;
            lits.push(l);
            if sum >= target {
                break;
            }
        }
        if sum < target {
            // Fresh summation fell short of the margin (drift-tight case):
            // skip learning rather than risk an unsound nogood.
            self.bump_conflict(&[v as u32]);
            return;
        }
        // `depth_of[v]` is stale (v is unassigned); pretend it is deepest.
        self.depth_of[v] = self.num_assigned;
        if let Some(ng) = self.nogoods.as_deref_mut() {
            ng.learn(&lits, &self.depth_of);
        }
        let vars: Vec<u32> = lits.iter().map(|&l| nogood::lit_var(l)).collect();
        self.bump_conflict(&vars);
    }

    /// Learn a minimized nogood from a COMPL violation, when it is expressible
    /// over assigned singles alone: if `BIC − Σ w_ic(chosen singles)` is
    /// already below the goal (with a wide relative margin for float drift),
    /// every completion keeping those variables single misses the IC goal.
    fn learn_compl(&mut self, v: usize) {
        let can_learn = self.learn && self.nogoods.as_ref().is_some_and(|ng| ng.has_room());
        if !can_learn || self.singles_cnt == 0 || self.singles_cnt > MAX_COMPL_SCAN {
            self.bump_conflict(&[v as u32]);
            return;
        }
        let goal_margin = self.prep.goal_fic * (1.0 - 1e-6);
        if self.prep.bic_rate - self.singles_ic >= goal_margin {
            // Not expressible over singles alone (the violation also depends
            // on DOM removals / unassigned structure): don't learn.
            self.bump_conflict(&[v as u32]);
            return;
        }
        let mut cand: Vec<(f64, u32)> = Vec::with_capacity(self.singles_cnt as usize);
        for (u, &a) in self.assign.iter().enumerate() {
            if a != 0 && a != Val::Both as u8 {
                cand.push((
                    self.prep.w_ic[u],
                    nogood::lit(u as u32, nogood::CODE_NOT_BOTH),
                ));
            }
        }
        cand.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut lost = 0.0;
        let mut lits: Vec<u32> = Vec::with_capacity(8);
        for &(w, l) in &cand {
            lost += w;
            lits.push(l);
            if self.prep.bic_rate - lost < goal_margin {
                break;
            }
        }
        if self.prep.bic_rate - lost >= goal_margin {
            self.bump_conflict(&[v as u32]);
            return;
        }
        if let Some(ng) = self.nogoods.as_deref_mut() {
            ng.learn(&lits, &self.depth_of);
        }
        let vars: Vec<u32> = lits.iter().map(|&l| nogood::lit_var(l)).collect();
        self.bump_conflict(&vars);
    }

    /// Forward domain propagation (DOM, §4.5): after binding `v` to a
    /// single-replica value, recursively remove `Both` from successors whose
    /// predecessors are all "dead" in this configuration (no source inputs
    /// and every PE input with `Δ̂ = 0` or doomed to it).
    fn propagate_dom(&mut self, v: usize) {
        let var = self.prep.vars[v];
        self.dom_walk(var.pe as usize, var.cfg.index());
    }

    /// The DOM walk proper, from the successors of `pe` in configuration `c`.
    fn dom_walk(&mut self, pe: usize, c: usize) {
        let nq = self.prep.num_configs;
        let mut stack: Vec<u32> = self.prep.pe_succ[pe].clone();
        while let Some(succ) = stack.pop() {
            let u = self.prep.var_index[succ as usize * nq + c];
            if self.assign[u] != 0 || self.both_removed[u] {
                continue;
            }
            let mut all_dead = true;
            for e in &self.prep.pe_in[succ as usize] {
                if e.from_source {
                    all_dead = false;
                    break;
                }
                let p = e.idx as usize;
                let pv = self.prep.var_index[p * nq + c];
                let dead = if self.assign[pv] != 0 {
                    self.dhat[p * nq + c] == 0.0
                } else {
                    self.both_removed[pv]
                };
                if !dead {
                    all_dead = false;
                    break;
                }
            }
            if all_dead {
                self.remove_both(succ as usize, c, u);
                for &s2 in &self.prep.pe_succ[succ as usize] {
                    stack.push(s2);
                }
            }
        }
    }

    /// Remove `Both` from the open variable `u = (pe, c)`: freeze its Δ̂
    /// upper bound (a single is all it can be, contributing nothing),
    /// subtract its residual IC credit, propagate the loss downstream, and
    /// trail the exact amounts for undo.
    fn remove_both(&mut self, pe: usize, c: usize, u: usize) {
        let slot = pe * self.prep.num_configs + c;
        self.both_removed[u] = true;
        let credit = self.prep.prob[c] * self.rcv_ub[slot];
        self.ic_ub_rem -= credit;
        self.ic_ub_by_cfg[c] -= credit;
        let dhat_saved = self.dhat_ub[slot];
        self.dhat_ub[slot] = 0.0;
        if dhat_saved != 0.0 {
            self.propagate_dhat_ub(pe, c, -dhat_saved);
        }
        self.trail.push(DomUndo {
            var: u as u32,
            credit,
            dhat_saved,
        });
        self.stats
            .record_prune(PruneKind::Dom, (self.prep.num_vars - u) as u64);
    }

    /// Capacity-based `Both` removal (CAP): host loads only grow down a
    /// branch, so once both replicas of an open variable no longer fit on
    /// their hosts in this configuration, `Both` is gone for the whole
    /// subtree. Scans only the PEs sharing a host with the variable just
    /// assigned (the two slots whose load changed), then lets the DOM walk
    /// pick up any chains the removals killed.
    fn propagate_cap(&mut self, v: usize) {
        let prep = self.prep;
        let var = prep.vars[v];
        let pe = var.pe as usize;
        let c = var.cfg.index();
        let nq = prep.num_configs;
        for hi in 0..2 {
            let h = prep.host_of[pe][hi] as usize;
            if hi == 1 && h == prep.host_of[pe][0] as usize {
                break;
            }
            for &u_pe in &prep.host_pes[h] {
                let u_pe = u_pe as usize;
                let u = prep.var_index[u_pe * nq + c];
                if self.assign[u] != 0 || self.both_removed[u] {
                    continue;
                }
                let load = prep.replica_load[u_pe * nq + c];
                let h0 = prep.host_of[u_pe][0] as usize;
                let h1 = prep.host_of[u_pe][1] as usize;
                let infeasible = if h0 == h1 {
                    self.host_load[h0 * nq + c] + 2.0 * load >= prep.cap[h0]
                } else {
                    self.host_load[h0 * nq + c] + load >= prep.cap[h0]
                        || self.host_load[h1 * nq + c] + load >= prep.cap[h1]
                };
                if infeasible {
                    self.remove_both(u_pe, c, u);
                    if self.opts.prune_dom {
                        self.dom_walk(u_pe, c);
                    }
                }
            }
        }
    }

    fn undo_dom(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let t = self.trail.pop().unwrap();
            let u = t.var as usize;
            let var = self.prep.vars[u];
            let pe = var.pe as usize;
            let c = var.cfg.index();
            self.both_removed[u] = false;
            if t.dhat_saved != 0.0 {
                self.propagate_dhat_ub(pe, c, t.dhat_saved);
            }
            self.dhat_ub[pe * self.prep.num_configs + c] = t.dhat_saved;
            self.ic_ub_rem += t.credit;
            self.ic_ub_by_cfg[c] += t.credit;
        }
    }

    /// Propagate a change `delta` of `Δ̂_ub(pe, c)` to all descendants in
    /// configuration `c`: their receive-rate upper bounds shift by the
    /// selectivity-weighted delta, open (non-removed) descendants adjust the
    /// global IC upper bound, and the wave continues below them. Removed or
    /// frozen slots absorb the receive update without recursing (their own
    /// `Δ̂_ub` is already 0 — exact, since they can only go single). Purely
    /// additive, so re-propagating `-delta` undoes it term by term.
    fn propagate_dhat_ub(&mut self, pe: usize, c: usize, delta: f64) {
        let prep = self.prep;
        let nq = prep.num_configs;
        let mut stack = std::mem::take(&mut self.prop_stack);
        stack.clear();
        stack.push((pe as u32, delta));
        while let Some((u, d)) = stack.pop() {
            for &(s, sel) in &prep.pe_out[u as usize] {
                let slot = s as usize * nq + c;
                let sv = prep.var_index[slot];
                debug_assert_eq!(
                    self.assign[sv], 0,
                    "descendants of an open/just-decided slot are unassigned \
                     (per-configuration topological order)"
                );
                self.rcv_ub[slot] += d;
                if !self.both_removed[sv] {
                    self.ic_ub_rem += prep.prob[c] * d;
                    self.ic_ub_by_cfg[c] += prep.prob[c] * d;
                    let dd = sel * d;
                    if dd != 0.0 {
                        self.dhat_ub[slot] += dd;
                        stack.push((s, dd));
                    }
                }
            }
        }
        self.prop_stack = stack;
    }

    /// A complete assignment was reached: recompute FIC/cost exactly (kills
    /// incremental drift), re-validate, and record if improving.
    fn record_leaf(&mut self) {
        let (cost, fic, max_rel_load) = self.recompute_exact();
        if fic < self.prep.goal_fic * (1.0 - BOUND_EPS) {
            // Only reachable when COMPL pruning is disabled (ablation mode).
            return;
        }
        if max_rel_load >= 1.0 {
            // Only reachable when CPU pruning is disabled (ablation mode).
            return;
        }
        let incumbent = self.incumbent_cost();
        let improving = match incumbent {
            Some(b) => cost < b * (1.0 - BOUND_EPS),
            None => true,
        };
        if !self.tie_keeping {
            // Strict mode (sequential / portfolio workers): strict
            // improvement or nothing.
            if !improving {
                return;
            }
            self.note_solution(cost, true);
            let sol = RawSolution {
                assign: self.assign.clone(),
                cost_rate: cost,
                fic_rate: fic,
            };
            if let Some(sh) = self.shared {
                sh.offer(&sol);
            }
            self.best = Some(sol);
            if self.stop_on_solution {
                self.timed_out = true;
            }
            return;
        }
        // Parallel tie-keeping mode: keep every leaf within the eps-band of
        // the incumbent (the tie-keeping COST cut guarantees such leaves are
        // always reached) and resolve ties by the total order, so the final
        // incumbent does not depend on which worker got there first.
        let keep = match incumbent {
            Some(b) => cost <= b * (1.0 + BOUND_EPS),
            None => true,
        };
        if !keep {
            return;
        }
        self.note_solution(cost, improving);
        let sol = RawSolution {
            assign: self.assign.clone(),
            cost_rate: cost,
            fic_rate: fic,
        };
        if let Some(sh) = self.shared {
            sh.offer(&sol);
        }
        let replace = match &self.best {
            Some(b) => super::better_solution(&sol, b),
            None => true,
        };
        if replace {
            self.best = Some(sol);
        }
    }

    /// Update first/best statistics for a kept leaf. `improving` preserves
    /// the historical semantics: only strict cost improvements count as
    /// improvements or move `time_to_best` (tie-kept equal-cost solutions
    /// do not).
    fn note_solution(&mut self, cost: f64, improving: bool) {
        let now = self.start.elapsed();
        if self.stats.time_to_first.is_none() {
            self.stats.time_to_first = Some(now);
            self.stats.first_cost = Some(cost);
        }
        if improving {
            self.stats.time_to_best = Some(now);
            self.stats.best_cost = Some(cost);
            self.stats.improvements += 1;
            let nodes = self.stats.nodes;
            self.stats.push_incumbent(now, nodes, cost);
        }
    }

    /// Exact (non-incremental) evaluation of the current complete assignment.
    /// Returns `(cost_rate, fic_rate, max load/capacity ratio)`.
    fn recompute_exact(&self) -> (f64, f64, f64) {
        evaluate_assignment(self.prep, &self.assign)
    }
}

/// Exact evaluation of a complete assignment: `(cost_rate, fic_rate,
/// max load/capacity ratio over hosts and configurations)`. Shared by the
/// engine's leaf check and the greedy incumbent seeding.
pub(crate) fn evaluate_assignment(p: &Prep, assign: &[u8]) -> (f64, f64, f64) {
    let nq = p.num_configs;
    let mut cost = 0.0;
    let mut fic = 0.0;
    let mut host_load = vec![0.0f64; p.num_hosts * nq];
    let mut dhat = vec![0.0f64; p.num_pes * nq];
    for c in 0..nq {
        // PEs in topological (dense) order.
        for pe in 0..p.num_pes {
            let v = p.var_index[pe * nq + c];
            let val = assign[v];
            debug_assert_ne!(val, 0);
            let both = val == Val::Both as u8;
            let mut received = 0.0;
            let mut weighted = 0.0;
            for e in &p.pe_in[pe] {
                let d = if e.from_source {
                    p.source_rate[e.idx as usize * nq + c]
                } else {
                    dhat[e.idx as usize * nq + c]
                };
                received += d;
                weighted += e.sel * d;
            }
            let phi = if both { 1.0 } else { 0.0 };
            dhat[pe * nq + c] = phi * weighted;
            fic += p.prob[c] * phi * received;
            let mult = if both { 2.0 } else { 1.0 };
            cost += mult * p.w_cost[v];
            let load = p.replica_load[pe * nq + c];
            match val {
                x if x == Val::Both as u8 => {
                    host_load[p.host_of[pe][0] as usize * nq + c] += load;
                    host_load[p.host_of[pe][1] as usize * nq + c] += load;
                }
                x if x == Val::Only0 as u8 => {
                    host_load[p.host_of[pe][0] as usize * nq + c] += load;
                }
                _ => {
                    host_load[p.host_of[pe][1] as usize * nq + c] += load;
                }
            }
        }
    }
    let mut max_rel = 0.0f64;
    for h in 0..p.num_hosts {
        for c in 0..nq {
            let rel = host_load[h * nq + c] / p.cap[h];
            max_rel = max_rel.max(rel);
        }
    }
    (cost, fic, max_rel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ftsearch::FtSearchConfig;
    use crate::testutil::fig2_problem;
    use std::time::Duration;

    fn run_fig2(ic: f64) -> (Option<RawSolution>, SearchStats) {
        let p = fig2_problem(ic);
        let prep = Prep::build(&p);
        let opts = FtSearchConfig::default();
        let start = Instant::now();
        let deadline = start + Duration::from_secs(10);
        let mut eng = Engine::new(&prep, &opts, start, deadline, None);
        let (sol, timed_out) = eng.run(0);
        assert!(!timed_out);
        (sol, eng.stats)
    }

    #[test]
    fn fig2_ic06_finds_fig2b_like_solution() {
        let (sol, stats) = run_fig2(0.6);
        let sol = sol.expect("feasible");
        assert!(stats.proved);
        // IC must be at least 0.6 of BIC-rate 9.6.
        assert!(sol.fic_rate >= 0.6 * 9.6 - 1e-9);
        // Optimal: fully replicate in Low (0.8 * 2 PEs * 400 * 2 replicas),
        // single replicas at High (0.2 * 2 * 800): cost = 1280 + 320 = 1600.
        assert!((sol.cost_rate - 1600.0).abs() < 1e-6, "{}", sol.cost_rate);
    }

    #[test]
    fn fig2_ic_zero_single_replicas_everywhere() {
        let (sol, _) = run_fig2(0.0);
        let sol = sol.expect("feasible");
        // Cheapest valid strategy: one replica everywhere.
        // cost = 0.8*2*400 + 0.2*2*800 = 640 + 320 = 960.
        assert!((sol.cost_rate - 960.0).abs() < 1e-6, "{}", sol.cost_rate);
    }

    #[test]
    fn fig2_high_ic_is_infeasible() {
        // Full replication at High is impossible (hosts overload), so any
        // IC above the Low-only share (2/3) cannot be guaranteed.
        let (sol, stats) = run_fig2(0.9);
        assert!(sol.is_none());
        assert!(stats.proved);
    }

    #[test]
    fn fig2_boundary_ic_two_thirds_feasible() {
        let (sol, _) = run_fig2(2.0 / 3.0);
        assert!(sol.is_some());
    }

    #[test]
    fn stats_record_pruning() {
        let (_, stats) = run_fig2(0.6);
        assert!(stats.nodes > 0);
        let total_prunes: u64 = stats.prunes.iter().sum();
        assert!(total_prunes > 0, "expected some pruning on fig2");
    }

    #[test]
    fn first_solution_not_cheaper_than_best() {
        let (_, stats) = run_fig2(0.6);
        if let Some(r) = stats.first_to_best_cost_ratio() {
            assert!(r >= 1.0 - 1e-9);
        }
    }
}
