//! CP-style anytime driver over the FT-Search engine: activity/conflict-guided
//! ordering, geometric restarts that keep learned nogoods and the incumbent,
//! LNS around the incumbent, and the shared-nogood pool used by portfolio
//! workers.
//!
//! One driver call owns one nogood store, one activity table, and one seeded
//! RNG; it runs the [`Engine`] repeatedly under node budgets. Everything is
//! metered in nodes (never wall-clock decisions), so a driver run under a
//! node limit is deterministic — the property `adapt::replanner` relies on
//! for cross-engine parity.

use super::nogood::NogoodStore;
use super::prep::Prep;
use super::search::{evaluate_assignment, Engine, RawSolution, Val, ValuePolicy};
use super::stats::SearchStats;
use super::{better_solution, FtSearchConfig, SharedBest};
use rand::{Rng, SeedableRng, StdRng};
use std::sync::Mutex;
use std::time::Instant;

/// VSIDS-style variable activity: bump at conflicts, geometric decay via a
/// growing increment, rescale near overflow.
pub(crate) struct Activity {
    score: Vec<f64>,
    inc: f64,
}

/// Per-conflict decay factor (increment grows by `1/DECAY`).
const DECAY: f64 = 0.95;
/// Rescale threshold.
const RESCALE_AT: f64 = 1e100;

impl Activity {
    pub(crate) fn new(num_vars: usize) -> Self {
        Self {
            score: vec![0.0; num_vars],
            inc: 1.0,
        }
    }

    #[inline]
    pub(crate) fn bump(&mut self, v: usize) {
        self.score[v] += self.inc;
        if self.score[v] > RESCALE_AT {
            self.rescale();
        }
    }

    #[inline]
    pub(crate) fn decay(&mut self) {
        self.inc /= DECAY;
        if self.inc > RESCALE_AT {
            self.rescale();
        }
    }

    #[inline]
    pub(crate) fn score(&self, v: usize) -> f64 {
        self.score[v]
    }

    fn rescale(&mut self) {
        for s in &mut self.score {
            *s *= 1.0 / RESCALE_AT;
        }
        self.inc *= 1.0 / RESCALE_AT;
    }
}

/// Build an exploration order from current activities: configuration blocks
/// sorted by total activity (descending, ties in original block order), PEs
/// within a block in a priority topological order (most active ready PE
/// first, ties on the smaller dense index). Any such order keeps
/// predecessors-before-successors per configuration, which the engine's
/// incremental Δ̂/FIC bookkeeping and DOM propagation require.
pub(crate) fn build_order(prep: &Prep, act: &Activity) -> Vec<u32> {
    let np = prep.num_pes;
    let nq = prep.num_configs;
    let nblocks = prep.num_vars / np;
    debug_assert_eq!(nblocks * np, prep.num_vars);

    let mut blocks: Vec<(f64, usize)> = (0..nblocks)
        .map(|b| {
            let sum: f64 = (b * np..(b + 1) * np).map(|v| act.score(v)).sum();
            (sum, b)
        })
        .collect();
    blocks.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));

    // Unique successor lists derived from the deduplicated predecessor sets.
    let mut succs: Vec<Vec<u32>> = vec![Vec::new(); np];
    for (s, preds) in prep.pe_pred.iter().enumerate() {
        for &p in preds {
            succs[p as usize].push(s as u32);
        }
    }

    let mut order = Vec::with_capacity(prep.num_vars);
    let mut indeg = vec![0u32; np];
    let mut ready: Vec<u32> = Vec::with_capacity(np);
    for (_, b) in blocks {
        let c = prep.vars[b * np].cfg.index();
        for (d, preds) in indeg.iter_mut().zip(&prep.pe_pred) {
            *d = preds.len() as u32;
        }
        ready.clear();
        ready.extend((0..np as u32).filter(|&pe| indeg[pe as usize] == 0));
        for _ in 0..np {
            let mut pick = 0;
            let mut pick_score = f64::NEG_INFINITY;
            let mut pick_pe = u32::MAX;
            for (i, &pe) in ready.iter().enumerate() {
                let s = act.score(prep.var_index[pe as usize * nq + c]);
                if s > pick_score || (s == pick_score && pe < pick_pe) {
                    pick = i;
                    pick_score = s;
                    pick_pe = pe;
                }
            }
            let pe = ready.swap_remove(pick) as usize;
            order.push(prep.var_index[pe * nq + c] as u32);
            for &s in &succs[pe] {
                indeg[s as usize] -= 1;
                if indeg[s as usize] == 0 {
                    ready.push(s);
                }
            }
        }
    }
    debug_assert_eq!(order.len(), prep.num_vars);
    order
}

/// Constructive feasibility dive: start from all-`Both` (maximal IC), then
/// repair CPU overloads one at a time. For the most-overloaded (host,
/// configuration) slot, the candidate moves are (a) flip a fully replicated
/// PE with a replica there to its other-side single and (b) migrate a single
/// to its sibling host when that host has headroom; the applied move is the
/// one losing the least *exact* FIC per unit of load relieved. Exact
/// re-evaluation per candidate sees the full downstream Δ̂-chain damage that
/// the per-variable weight `w_ic` misses, which is what lets this dive find
/// feasible incumbents on instances where `greedy_seed` gives up (it cannot
/// migrate singles at all). Deterministic; returns `None` when repair gets
/// stuck or the repaired assignment misses the IC goal.
pub(crate) fn repair_seed(prep: &Prep) -> Option<RawSolution> {
    let nq = prep.num_configs;
    let nh = prep.num_hosts;
    let mut assign = vec![Val::Both as u8; prep.num_vars];
    let mut load = vec![0.0f64; nh * nq];
    for pe in 0..prep.num_pes {
        for c in 0..nq {
            let l = prep.replica_load[pe * nq + c];
            load[prep.host_of[pe][0] as usize * nq + c] += l;
            load[prep.host_of[pe][1] as usize * nq + c] += l;
        }
    }
    let max_steps = 4 * prep.num_vars.max(16);
    for _ in 0..max_steps {
        // Most overloaded (host, configuration) slot relative to capacity.
        let mut worst: Option<(usize, usize, f64)> = None;
        for h in 0..nh {
            for c in 0..nq {
                let rel = load[h * nq + c] / prep.cap[h];
                if rel >= 1.0 && worst.is_none_or(|(_, _, w)| rel > w) {
                    worst = Some((h, c, rel));
                }
            }
        }
        let Some((h, c, _)) = worst else {
            return readd_phase(prep, assign, load);
        };
        let (_, fic_now, _) = evaluate_assignment(prep, &assign);
        // (damage per load relieved, variable, new value).
        let mut pick: Option<(f64, usize, u8)> = None;
        for pe in 0..prep.num_pes {
            let v = prep.var_index[pe * nq + c];
            let l = prep.replica_load[pe * nq + c];
            if l <= 0.0 {
                continue;
            }
            let h0 = prep.host_of[pe][0] as usize;
            let h1 = prep.host_of[pe][1] as usize;
            let a = assign[v];
            let new_val = if a == Val::Both as u8 && h0 == h {
                Val::Only1 as u8
            } else if a == Val::Both as u8 && h1 == h {
                Val::Only0 as u8
            } else if a == Val::Only0 as u8 && h0 == h && h1 != h {
                // Migrating is allowed only into real headroom, so a move
                // never creates a fresh overload (keeps repair from
                // ping-ponging a single between two tight hosts).
                if load[h1 * nq + c] + l >= prep.cap[h1] {
                    continue;
                }
                Val::Only1 as u8
            } else if a == Val::Only1 as u8 && h1 == h && h0 != h {
                if load[h0 * nq + c] + l >= prep.cap[h0] {
                    continue;
                }
                Val::Only0 as u8
            } else {
                continue;
            };
            let old = assign[v];
            assign[v] = new_val;
            let (_, fic_after, _) = evaluate_assignment(prep, &assign);
            assign[v] = old;
            let score = (fic_now - fic_after).max(0.0) / l;
            if pick.is_none_or(|(s, _, _)| score < s) {
                pick = Some((score, v, new_val));
            }
        }
        let (_, v, new_val) = pick?;
        let pe = prep.vars[v].pe as usize;
        let l = prep.replica_load[pe * nq + c];
        let old = assign[v];
        // Replica r is active under Both or Only_r.
        for r in 0..2usize {
            let hr = prep.host_of[pe][r] as usize;
            let was = old == Val::Both as u8 || old == Val::Only0 as u8 + r as u8;
            let is = new_val == Val::Both as u8 || new_val == Val::Only0 as u8 + r as u8;
            if was && !is {
                load[hr * nq + c] -= l;
            } else if !was && is {
                load[hr * nq + c] += l;
            }
        }
        assign[v] = new_val;
    }
    None
}

/// Second half of [`repair_seed`]: the unload greedy over-corrects (later
/// migrations free headroom its earlier flips were compensating for), so
/// greedily restore `Both` wherever the inactive replica's host now has
/// room, largest exact FIC gain first, until the IC goal is met or no
/// restoring flip fits.
fn readd_phase(prep: &Prep, mut assign: Vec<u8>, mut load: Vec<f64>) -> Option<RawSolution> {
    let nq = prep.num_configs;
    loop {
        let (cost_rate, fic_rate, max_rel) = evaluate_assignment(prep, &assign);
        if fic_rate >= prep.goal_fic * (1.0 - 1e-9) && max_rel < 1.0 {
            return Some(RawSolution {
                assign,
                cost_rate,
                fic_rate,
            });
        }
        let mut pick: Option<(f64, usize)> = None;
        for v in 0..prep.num_vars {
            let a = assign[v];
            if a == Val::Both as u8 {
                continue;
            }
            let var = prep.vars[v];
            let pe = var.pe as usize;
            let c = var.cfg.index();
            let l = prep.replica_load[pe * nq + c];
            // The replica the single left inactive.
            let r = if a == Val::Only0 as u8 { 1 } else { 0 };
            let hr = prep.host_of[pe][r] as usize;
            if load[hr * nq + c] + l >= prep.cap[hr] {
                continue;
            }
            let old = assign[v];
            assign[v] = Val::Both as u8;
            let (_, fic_after, _) = evaluate_assignment(prep, &assign);
            assign[v] = old;
            let gain = fic_after - fic_rate;
            if gain > 0.0 && pick.is_none_or(|(g, _)| gain > g) {
                pick = Some((gain, v));
            }
        }
        let Some((_, v)) = pick else {
            return swap_phase(prep, assign, load);
        };
        let var = prep.vars[v];
        let pe = var.pe as usize;
        let c = var.cfg.index();
        let r = if assign[v] == Val::Only0 as u8 { 1 } else { 0 };
        load[prep.host_of[pe][r] as usize * nq + c] += prep.replica_load[pe * nq + c];
        assign[v] = Val::Both as u8;
    }
}

/// Last resort of [`repair_seed`]: hosts are packed, so no single flip back
/// to `Both` fits — but *swapping* can still raise FIC: evict a fully
/// replicated PE from the blocked host (flip it to the single on its other
/// side) to admit a single whose restoration gains more than the eviction
/// loses. Repeats steepest-ascent while some swap has strictly positive
/// exact net FIC gain; FIC is bounded, so the `net > eps` requirement
/// terminates the loop.
fn swap_phase(prep: &Prep, mut assign: Vec<u8>, mut load: Vec<f64>) -> Option<RawSolution> {
    let nq = prep.num_configs;
    let eps = 1e-12 * prep.bic_rate.max(1.0);
    for _ in 0..4 * prep.num_vars.max(16) {
        let (cost_rate, fic_rate, max_rel) = evaluate_assignment(prep, &assign);
        if fic_rate >= prep.goal_fic * (1.0 - 1e-9) && max_rel < 1.0 {
            return Some(RawSolution {
                assign,
                cost_rate,
                fic_rate,
            });
        }
        // Best (net gain, restored var, evicted var, evicted new value).
        let mut pick: Option<(f64, usize, usize, u8)> = None;
        for v in 0..prep.num_vars {
            let a = assign[v];
            if a == Val::Both as u8 {
                continue;
            }
            let var = prep.vars[v];
            let pe = var.pe as usize;
            let c = var.cfg.index();
            let lv = prep.replica_load[pe * nq + c];
            let r = if a == Val::Only0 as u8 { 1 } else { 0 };
            let hr = prep.host_of[pe][r] as usize;
            for wpe in 0..prep.num_pes {
                if wpe == pe {
                    continue;
                }
                let w = prep.var_index[wpe * nq + c];
                if assign[w] != Val::Both as u8 {
                    continue;
                }
                let wh0 = prep.host_of[wpe][0] as usize;
                let wh1 = prep.host_of[wpe][1] as usize;
                let lw = prep.replica_load[wpe * nq + c];
                // Which replica of w sits on the blocked host?
                let w_new = if wh0 == hr {
                    Val::Only1 as u8
                } else if wh1 == hr {
                    Val::Only0 as u8
                } else {
                    continue;
                };
                if load[hr * nq + c] + lv - lw >= prep.cap[hr] {
                    continue;
                }
                let (old_v, old_w) = (assign[v], assign[w]);
                assign[v] = Val::Both as u8;
                assign[w] = w_new;
                let (_, fic_after, _) = evaluate_assignment(prep, &assign);
                assign[v] = old_v;
                assign[w] = old_w;
                let net = fic_after - fic_rate;
                if net > eps && pick.is_none_or(|(g, _, _, _)| net > g) {
                    pick = Some((net, v, w, w_new));
                }
            }
        }
        let (_, v, w, w_new) = pick?;
        let (vvar, wvar) = (prep.vars[v], prep.vars[w]);
        let c = vvar.cfg.index();
        let vpe = vvar.pe as usize;
        let wpe = wvar.pe as usize;
        let r = if assign[v] == Val::Only0 as u8 { 1 } else { 0 };
        let hr = prep.host_of[vpe][r] as usize;
        load[hr * nq + c] += prep.replica_load[vpe * nq + c];
        load[hr * nq + c] -= prep.replica_load[wpe * nq + c];
        debug_assert!(
            prep.host_of[wpe][if w_new == Val::Only1 as u8 { 0 } else { 1 }] as usize == hr
        );
        assign[v] = Val::Both as u8;
        assign[w] = w_new;
    }
    None
}

/// Build an LNS freeze mask around `incumbent`: entries left non-zero are
/// pinned to the incumbent value, zero entries are re-decided. Neighborhoods
/// rotate by round: (0) a random host subset across all configurations,
/// (1) a random host subset in one random configuration, (2) a random
/// variable subset. Seeded RNG keeps the sequence deterministic.
pub(crate) fn lns_neighborhood(
    rng: &mut StdRng,
    prep: &Prep,
    incumbent: &[u8],
    relax_frac: f64,
    round: u64,
) -> Vec<u8> {
    let nv = prep.num_vars;
    let nq = prep.num_configs;
    let mut fixed = incumbent.to_vec();
    match round % 3 {
        0 | 1 => {
            let k = ((prep.num_hosts as f64 * relax_frac).ceil() as usize).clamp(1, prep.num_hosts);
            let mut hosts = vec![false; prep.num_hosts];
            let mut chosen = 0;
            while chosen < k {
                let h = rng.random_range(0..prep.num_hosts);
                if !hosts[h] {
                    hosts[h] = true;
                    chosen += 1;
                }
            }
            let only_cfg = (round % 3 == 1).then(|| rng.random_range(0..nq));
            for (v, f) in fixed.iter_mut().enumerate() {
                let var = prep.vars[v];
                if only_cfg.is_some_and(|c| var.cfg.index() != c) {
                    continue;
                }
                let pe = var.pe as usize;
                if hosts[prep.host_of[pe][0] as usize] || hosts[prep.host_of[pe][1] as usize] {
                    *f = 0;
                }
            }
        }
        _ => {
            let k = ((nv as f64 * relax_frac).ceil() as usize).clamp(1, nv);
            let mut chosen = 0;
            while chosen < k {
                let v = rng.random_range(0..nv);
                if fixed[v] != 0 {
                    fixed[v] = 0;
                    chosen += 1;
                }
            }
        }
    }
    fixed
}

/// Shared pool of short nogoods exchanged between portfolio workers. Workers
/// publish at restart boundaries and import everything new since their last
/// read; the store's canonical-form dedup makes re-imports harmless.
#[derive(Default)]
pub(crate) struct NogoodPool {
    entries: Mutex<Vec<Vec<u32>>>,
}

/// Only nogoods at most this long are shared (short = general = worth it).
const SHARE_MAX_LEN: usize = 8;

impl NogoodPool {
    pub(crate) fn publish(&self, lits: &[u32]) {
        self.entries.lock().unwrap().push(lits.to_vec());
    }

    /// Entries added since `cursor`, plus the new cursor.
    pub(crate) fn read_from(&self, cursor: usize) -> (Vec<Vec<u32>>, usize) {
        let entries = self.entries.lock().unwrap();
        (entries[cursor..].to_vec(), entries.len())
    }
}

fn publish_new(pool: Option<&NogoodPool>, ng: &NogoodStore, published: &mut usize) {
    if let Some(pool) = pool {
        for g in *published..ng.count() {
            let lits = ng.nogood(g);
            if lits.len() <= SHARE_MAX_LEN {
                pool.publish(lits);
            }
        }
        *published = ng.count();
    }
}

/// Per-worker knobs; the portfolio varies these across workers.
pub(crate) struct CpWorkerParams {
    pub seed: u64,
    pub restart_base: u64,
    pub restart_factor: f64,
    pub relax_frac: f64,
    pub worker_id: usize,
}

/// One CP worker: geometric restarts (keeping nogoods, activities, and the
/// incumbent) interleaved with LNS rounds around the incumbent. Returns the
/// best solution found and merged stats; `stats.proved` is set only when a
/// restart run completed its whole tree within budget (never from an LNS
/// run, whose tree is restricted to a neighborhood).
#[allow(clippy::too_many_arguments)]
pub(crate) fn solve_cp(
    prep: &Prep,
    opts: &FtSearchConfig,
    start: Instant,
    deadline: Instant,
    shared: Option<&SharedBest>,
    pool: Option<&NogoodPool>,
    params: &CpWorkerParams,
    warm: Option<RawSolution>,
) -> (Option<RawSolution>, SearchStats) {
    let nv = prep.num_vars;
    let mut stats = SearchStats::default();
    let mut ng = NogoodStore::new(nv, opts.cp.max_nogoods);
    let mut act = Activity::new(nv);
    let mut rng = StdRng::seed_from_u64(params.seed);
    // The engine sees no global node limit: the driver meters runs itself.
    let mut eng_opts = opts.clone();
    eng_opts.node_limit = None;

    // No caller-provided seed: try the constructive repair dive. Its
    // incumbent is usually expensive (Both wherever it fits) but arrives in
    // microseconds and unlocks LNS from the first restart.
    let mut best = warm.or_else(|| repair_seed(prep));
    if let Some(b) = &best {
        // An externally installed seed is this solve's first incumbent:
        // record it so time-to-first/best are meaningful even if the search
        // never improves on it.
        stats.seeded = true;
        let at = start.elapsed();
        stats.time_to_first = Some(at);
        stats.first_cost = Some(b.cost_rate);
        stats.time_to_best = Some(at);
        stats.best_cost = Some(b.cost_rate);
        stats.push_incumbent(at, 0, b.cost_rate);
        if let Some(sh) = shared {
            sh.offer(b);
        }
    }

    let global_limit = opts.node_limit;
    let mut nodes_used: u64 = 0;
    let mut proved = false;
    let mut published = 0usize;
    let mut imported = 0usize;
    let mut restart_len = params.restart_base.max(64);
    // Desync the neighborhood rotation across workers.
    let mut lns_round: u64 = params.worker_id as u64;

    let remaining = |nodes_used: u64| -> u64 {
        match global_limit {
            Some(n) => n.saturating_sub(nodes_used),
            None => u64::MAX,
        }
    };

    'outer: loop {
        if Instant::now() >= deadline
            || shared.is_some_and(|s| s.is_cancelled())
            || remaining(nodes_used) == 0
        {
            break;
        }
        if let Some(pool) = pool {
            let (fresh, next) = pool.read_from(imported);
            imported = next;
            for e in &fresh {
                ng.import(e);
            }
        }
        let order = build_order(prep, &act);

        // Restart run: FIC-greedy dive while no incumbent exists, guided
        // re-exploration (strict COST cut against the incumbent) afterwards.
        let budget = restart_len.min(remaining(nodes_used));
        let guide_buf = best.as_ref().map(|b| b.assign.clone());
        {
            let mut eng = Engine::new(prep, &eng_opts, start, deadline, shared);
            eng.set_order(&order);
            eng.set_nogoods(&mut ng, true);
            eng.set_activity(&mut act);
            eng.set_tie_keeping(false);
            eng.set_node_budget(budget);
            match &guide_buf {
                Some(g) => {
                    eng.set_value_policy(ValuePolicy::Guided);
                    eng.set_guide(g);
                    eng.set_seed(best.clone().expect("guide implies incumbent"));
                }
                None => {
                    eng.set_value_policy(ValuePolicy::BothFirst);
                    eng.set_stop_on_solution(true);
                }
            }
            let (sol, timed_out) = eng.run(0);
            nodes_used += eng.stats.nodes;
            stats.merge(&eng.stats);
            if let Some(s) = sol {
                let take = match &best {
                    Some(b) => better_solution(&s, b),
                    None => true,
                };
                if take {
                    best = Some(s);
                }
            }
            if !timed_out {
                proved = true;
            }
        }
        publish_new(pool, &ng, &mut published);
        if proved {
            break;
        }
        stats.restarts += 1;

        // LNS rounds around the incumbent.
        if opts.cp.lns && best.is_some() {
            for _ in 0..opts.cp.lns_rounds_per_restart {
                if Instant::now() >= deadline
                    || shared.is_some_and(|s| s.is_cancelled())
                    || remaining(nodes_used) == 0
                {
                    break 'outer;
                }
                let b = best.clone().expect("lns requires incumbent");
                let fixed =
                    lns_neighborhood(&mut rng, prep, &b.assign, params.relax_frac, lns_round);
                lns_round += 1;
                let budget = opts.cp.lns_node_budget.min(remaining(nodes_used));
                let mut eng = Engine::new(prep, &eng_opts, start, deadline, shared);
                eng.set_order(&order);
                eng.set_nogoods(&mut ng, true);
                eng.set_activity(&mut act);
                eng.set_tie_keeping(false);
                eng.set_node_budget(budget);
                eng.set_value_policy(ValuePolicy::Guided);
                eng.set_guide(&b.assign);
                eng.set_fixed(&fixed);
                eng.set_seed(b.clone());
                let (sol, _) = eng.run(0);
                nodes_used += eng.stats.nodes;
                stats.merge(&eng.stats);
                stats.lns_rounds += 1;
                if let Some(s) = sol {
                    let take = match &best {
                        Some(bb) => better_solution(&s, bb),
                        None => true,
                    };
                    if take {
                        best = Some(s);
                    }
                }
            }
            publish_new(pool, &ng, &mut published);
        }

        restart_len = (((restart_len as f64) * params.restart_factor) as u64)
            .clamp(params.restart_base.max(64), opts.cp.restart_cap);
    }

    stats.nogoods_learned = ng.learned;
    stats.nogood_lits = ng.learned_lits;
    stats.proved = proved;
    stats.elapsed = start.elapsed();
    (best, stats)
}
