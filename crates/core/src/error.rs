//! Errors and constraint-violation reports for the LAAR optimizer.

use laar_model::{ConfigId, HostId};
use std::fmt;

/// A reason why an activation strategy is infeasible for a given problem.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// The guaranteed IC falls short of the SLA requirement (eq. 10).
    IcTooLow {
        /// Required IC from the SLA.
        required: f64,
        /// IC actually guaranteed by the strategy under the failure model.
        actual: f64,
    },
    /// Some host is overloaded in some configuration (eq. 11).
    HostOverloaded {
        /// The overloaded host.
        host: HostId,
        /// The configuration in which the overload occurs.
        config: ConfigId,
        /// CPU cycles/s that would be needed.
        load: f64,
        /// CPU cycles/s available (`K`).
        capacity: f64,
    },
    /// Some PE has no active replica in some configuration (eq. 12).
    NoActiveReplica {
        /// Dense PE index.
        pe_dense: usize,
        /// The configuration missing an active replica.
        config: ConfigId,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::IcTooLow { required, actual } => {
                write!(f, "IC {actual:.4} below SLA requirement {required:.4}")
            }
            Violation::HostOverloaded {
                host,
                config,
                load,
                capacity,
            } => write!(
                f,
                "host {} overloaded in configuration {} ({load:.0} cycles/s of {capacity:.0})",
                host.0, config.0
            ),
            Violation::NoActiveReplica { pe_dense, config } => write!(
                f,
                "PE (dense {pe_dense}) has no active replica in configuration {}",
                config.0
            ),
        }
    }
}

/// Errors from the optimizer layer.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The problem references a placement whose replication factor differs
    /// from the one the solver supports.
    UnsupportedReplication {
        /// The placement's `k`.
        k: usize,
    },
    /// The problem's placement and application disagree on the PE count.
    PlacementMismatch,
    /// The IC requirement is outside `[0, 1]`.
    InvalidIcRequirement(f64),
    /// The model layer rejected something.
    Model(laar_model::ModelError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnsupportedReplication { k } => {
                write!(
                    f,
                    "unsupported replication factor k = {k} (FT-Search requires k = 2)"
                )
            }
            CoreError::PlacementMismatch => {
                write!(f, "placement and application disagree on the number of PEs")
            }
            CoreError::InvalidIcRequirement(v) => {
                write!(f, "IC requirement {v} outside [0, 1]")
            }
            CoreError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<laar_model::ModelError> for CoreError {
    fn from(e: laar_model::ModelError) -> Self {
        CoreError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_display() {
        let v = Violation::IcTooLow {
            required: 0.7,
            actual: 0.61,
        };
        assert!(v.to_string().contains("0.6100"));
        let v = Violation::HostOverloaded {
            host: HostId(2),
            config: ConfigId(1),
            load: 1500.0,
            capacity: 1000.0,
        };
        assert!(v.to_string().contains("host 2"));
    }

    #[test]
    fn core_error_from_model_error() {
        let e: CoreError = laar_model::ModelError::CyclicGraph.into();
        assert!(matches!(e, CoreError::Model(_)));
    }
}
