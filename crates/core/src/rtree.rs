//! An R-tree over input-configuration rate vectors (§4.6).
//!
//! The HAController must map measured source rates to the input
//! configuration that is "spatially closer to the current data rates and
//! whose components are all greater than the corresponding actual rates" —
//! i.e. the *dominating* configuration with minimal slack, so the chosen
//! replica activation never underestimates the actual load. The paper uses
//! an "R-Tree-like data structure" (citing Guttman \[15\]); this module
//! implements a Sort-Tile-Recursive (STR) bulk-loaded R-tree storing one
//! point per configuration, with a branch-and-bound dominating-point query.

use laar_model::ConfigId;

/// Maximum entries per node.
const NODE_CAPACITY: usize = 8;

/// Minimum bounding rectangle in `dim` dimensions.
#[derive(Debug, Clone)]
struct Mbr {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl Mbr {
    fn of_points(points: &[(Vec<f64>, ConfigId)]) -> Self {
        let dim = points[0].0.len();
        let mut lo = vec![f64::INFINITY; dim];
        let mut hi = vec![f64::NEG_INFINITY; dim];
        for (p, _) in points {
            for d in 0..dim {
                lo[d] = lo[d].min(p[d]);
                hi[d] = hi[d].max(p[d]);
            }
        }
        Self { lo, hi }
    }

    fn of_mbrs<'a>(mbrs: impl Iterator<Item = &'a Mbr>) -> Self {
        let mut lo: Option<Vec<f64>> = None;
        let mut hi: Option<Vec<f64>> = None;
        for m in mbrs {
            match (&mut lo, &mut hi) {
                (Some(l), Some(h)) => {
                    for d in 0..l.len() {
                        l[d] = l[d].min(m.lo[d]);
                        h[d] = h[d].max(m.hi[d]);
                    }
                }
                _ => {
                    lo = Some(m.lo.clone());
                    hi = Some(m.hi.clone());
                }
            }
        }
        Self {
            lo: lo.expect("non-empty"),
            hi: hi.expect("non-empty"),
        }
    }

    /// Can this MBR contain a point dominating `q`? True iff the upper
    /// corner dominates `q`.
    fn may_dominate(&self, q: &[f64]) -> bool {
        self.hi.iter().zip(q).all(|(h, x)| h >= x)
    }

    /// Lower bound on the L1 slack `Σ (pᵢ - qᵢ)` of any dominating point in
    /// this MBR.
    fn slack_lower_bound(&self, q: &[f64]) -> f64 {
        self.lo.iter().zip(q).map(|(l, x)| (l - x).max(0.0)).sum()
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        mbr: Mbr,
        entries: Vec<(Vec<f64>, ConfigId)>,
    },
    Inner {
        mbr: Mbr,
        children: Vec<Node>,
    },
}

impl Node {
    fn mbr(&self) -> &Mbr {
        match self {
            Node::Leaf { mbr, .. } | Node::Inner { mbr, .. } => mbr,
        }
    }
}

/// A static R-tree over `(rate vector, configuration)` points.
#[derive(Debug, Clone)]
pub struct RTree {
    dim: usize,
    root: Option<Node>,
    len: usize,
}

impl RTree {
    /// Bulk-load the tree from configuration points using STR packing
    /// (sort by the first dimension, tile, then recursively by the next).
    pub fn bulk_load(mut points: Vec<(Vec<f64>, ConfigId)>) -> Self {
        if points.is_empty() {
            return Self {
                dim: 0,
                root: None,
                len: 0,
            };
        }
        let dim = points[0].0.len();
        assert!(points.iter().all(|(p, _)| p.len() == dim));
        let len = points.len();
        let leaves = Self::str_pack(&mut points, dim, 0);
        let root = Self::build_up(leaves);
        Self {
            dim,
            root: Some(root),
            len,
        }
    }

    fn str_pack(points: &mut [(Vec<f64>, ConfigId)], dim: usize, axis: usize) -> Vec<Node> {
        points.sort_by(|a, b| a.0[axis].partial_cmp(&b.0[axis]).unwrap());
        if points.len() <= NODE_CAPACITY {
            return vec![Node::Leaf {
                mbr: Mbr::of_points(points),
                entries: points.to_vec(),
            }];
        }
        // Number of leaves needed and the slab size along this axis.
        let n_leaves = points.len().div_ceil(NODE_CAPACITY);
        let n_slabs = (n_leaves as f64).powf(1.0 / (dim - axis) as f64).ceil() as usize;
        let slab_size = points.len().div_ceil(n_slabs);
        let mut out = Vec::new();
        for chunk in points.chunks_mut(slab_size.max(1)) {
            if axis + 1 < dim {
                out.extend(Self::str_pack(chunk, dim, axis + 1));
            } else {
                for leaf_chunk in chunk.chunks(NODE_CAPACITY) {
                    out.push(Node::Leaf {
                        mbr: Mbr::of_points(leaf_chunk),
                        entries: leaf_chunk.to_vec(),
                    });
                }
            }
        }
        out
    }

    fn build_up(mut level: Vec<Node>) -> Node {
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(NODE_CAPACITY));
            for chunk in level.chunks(NODE_CAPACITY) {
                let mbr = Mbr::of_mbrs(chunk.iter().map(|n| n.mbr()));
                next.push(Node::Inner {
                    mbr,
                    children: chunk.to_vec(),
                });
            }
            level = next;
        }
        level.pop().expect("non-empty")
    }

    /// Number of indexed configurations.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no configurations are indexed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality (number of data sources).
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Find the configuration whose rate vector dominates `q` (every
    /// component `≥` the measured one) with minimal L1 slack
    /// `Σ (cᵢ - qᵢ)`. Returns `None` when no configuration dominates `q`
    /// (the caller falls back to the componentwise-maximal configuration).
    pub fn dominating_min_slack(&self, q: &[f64]) -> Option<(ConfigId, f64)> {
        let root = self.root.as_ref()?;
        assert_eq!(q.len(), self.dim);
        let mut best: Option<(ConfigId, f64)> = None;
        Self::query(root, q, &mut best);
        best
    }

    fn query(node: &Node, q: &[f64], best: &mut Option<(ConfigId, f64)>) {
        if !node.mbr().may_dominate(q) {
            return;
        }
        if let Some((_, b)) = best {
            if node.mbr().slack_lower_bound(q) >= *b {
                return;
            }
        }
        match node {
            Node::Leaf { entries, .. } => {
                for (p, id) in entries {
                    if p.iter().zip(q).all(|(a, b)| a >= b) {
                        let slack: f64 = p.iter().zip(q).map(|(a, b)| a - b).sum();
                        match best {
                            Some((_, b)) if *b <= slack => {}
                            _ => *best = Some((*id, slack)),
                        }
                    }
                }
            }
            Node::Inner { children, .. } => {
                // Visit the child with the smallest slack lower bound first
                // so `best` tightens early.
                let mut order: Vec<usize> = (0..children.len()).collect();
                order.sort_by(|&a, &b| {
                    children[a]
                        .mbr()
                        .slack_lower_bound(q)
                        .partial_cmp(&children[b].mbr().slack_lower_bound(q))
                        .unwrap()
                });
                for i in order {
                    Self::query(&children[i], q, best);
                }
            }
        }
    }

    /// All configurations whose points fall inside the axis-aligned box
    /// `[lo, hi]` (inclusive). Used by diagnostics and tests.
    pub fn range(&self, lo: &[f64], hi: &[f64]) -> Vec<ConfigId> {
        let mut out = Vec::new();
        if let Some(root) = &self.root {
            Self::range_rec(root, lo, hi, &mut out);
        }
        out.sort();
        out
    }

    fn range_rec(node: &Node, lo: &[f64], hi: &[f64], out: &mut Vec<ConfigId>) {
        let m = node.mbr();
        let disjoint =
            m.lo.iter().zip(hi).any(|(a, b)| a > b) || m.hi.iter().zip(lo).any(|(a, b)| a < b);
        if disjoint {
            return;
        }
        match node {
            Node::Leaf { entries, .. } => {
                for (p, id) in entries {
                    if p.iter().zip(lo).all(|(x, l)| x >= l)
                        && p.iter().zip(hi).all(|(x, h)| x <= h)
                    {
                        out.push(*id);
                    }
                }
            }
            Node::Inner { children, .. } => {
                for c in children {
                    Self::range_rec(c, lo, hi, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force_dominating(
        points: &[(Vec<f64>, ConfigId)],
        q: &[f64],
    ) -> Option<(ConfigId, f64)> {
        points
            .iter()
            .filter(|(p, _)| p.iter().zip(q).all(|(a, b)| a >= b))
            .map(|(p, id)| (*id, p.iter().zip(q).map(|(a, b)| a - b).sum::<f64>()))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
    }

    fn grid_points(nx: usize, ny: usize) -> Vec<(Vec<f64>, ConfigId)> {
        let mut out = Vec::new();
        let mut id = 0;
        for i in 0..nx {
            for j in 0..ny {
                out.push((vec![i as f64 * 2.0, j as f64 * 3.0], ConfigId(id)));
                id += 1;
            }
        }
        out
    }

    #[test]
    fn empty_tree() {
        let t = RTree::bulk_load(vec![]);
        assert!(t.is_empty());
        assert_eq!(t.dominating_min_slack(&[]), None);
    }

    #[test]
    fn single_point() {
        let t = RTree::bulk_load(vec![(vec![4.0], ConfigId(0))]);
        assert_eq!(t.dominating_min_slack(&[3.0]), Some((ConfigId(0), 1.0)));
        assert_eq!(t.dominating_min_slack(&[4.0]), Some((ConfigId(0), 0.0)));
        assert_eq!(t.dominating_min_slack(&[4.5]), None);
    }

    #[test]
    fn low_high_like_paper() {
        // Low = 4 t/s, High = 8 t/s.
        let t = RTree::bulk_load(vec![(vec![4.0], ConfigId(0)), (vec![8.0], ConfigId(1))]);
        assert_eq!(t.dominating_min_slack(&[2.0]).unwrap().0, ConfigId(0));
        assert_eq!(t.dominating_min_slack(&[4.0]).unwrap().0, ConfigId(0));
        assert_eq!(t.dominating_min_slack(&[4.1]).unwrap().0, ConfigId(1));
        assert_eq!(t.dominating_min_slack(&[8.0]).unwrap().0, ConfigId(1));
        assert!(t.dominating_min_slack(&[9.0]).is_none());
    }

    #[test]
    fn matches_brute_force_on_grid() {
        let points = grid_points(13, 11);
        let t = RTree::bulk_load(points.clone());
        assert_eq!(t.len(), 143);
        for qi in 0..30 {
            let q = vec![qi as f64 * 0.9, (30 - qi) as f64 * 1.1];
            let got = t.dominating_min_slack(&q);
            let want = brute_force_dominating(&points, &q);
            match (got, want) {
                (Some((_, gs)), Some((_, ws))) => {
                    assert!((gs - ws).abs() < 1e-9, "slack mismatch at {q:?}");
                }
                (None, None) => {}
                (g, w) => panic!("mismatch at {q:?}: {g:?} vs {w:?}"),
            }
        }
    }

    #[test]
    fn three_dimensional_queries() {
        let mut points = Vec::new();
        let mut id = 0;
        for i in 0..5 {
            for j in 0..5 {
                for k in 0..5 {
                    points.push((vec![i as f64, j as f64 * 1.5, k as f64 * 2.5], ConfigId(id)));
                    id += 1;
                }
            }
        }
        let t = RTree::bulk_load(points.clone());
        for q in [
            vec![0.5, 0.5, 0.5],
            vec![3.9, 5.9, 9.9],
            vec![4.0, 6.0, 10.0],
            vec![4.1, 0.0, 0.0],
        ] {
            let got = t.dominating_min_slack(&q).map(|(_, s)| s);
            let want = brute_force_dominating(&points, &q).map(|(_, s)| s);
            match (got, want) {
                (Some(g), Some(w)) => assert!((g - w).abs() < 1e-9),
                (None, None) => {}
                (g, w) => panic!("mismatch at {q:?}: {g:?} vs {w:?}"),
            }
        }
    }

    #[test]
    fn range_query_matches_filter() {
        let points = grid_points(9, 9);
        let t = RTree::bulk_load(points.clone());
        let lo = vec![2.0, 3.0];
        let hi = vec![10.0, 12.0];
        let got = t.range(&lo, &hi);
        let mut want: Vec<ConfigId> = points
            .iter()
            .filter(|(p, _)| {
                p.iter().zip(&lo).all(|(x, l)| x >= l) && p.iter().zip(&hi).all(|(x, h)| x <= h)
            })
            .map(|(_, id)| *id)
            .collect();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn dominance_is_strict_per_component() {
        let t = RTree::bulk_load(vec![
            (vec![4.0, 10.0], ConfigId(0)),
            (vec![8.0, 5.0], ConfigId(1)),
            (vec![8.0, 10.0], ConfigId(2)),
        ]);
        // Only config 2 dominates (5, 7).
        assert_eq!(t.dominating_min_slack(&[5.0, 7.0]).unwrap().0, ConfigId(2));
        // (3, 6): config 0 dominates with slack 5; config 2 with slack 9.
        assert_eq!(t.dominating_min_slack(&[3.0, 6.0]).unwrap().0, ConfigId(0));
    }
}
