//! The complete application contract: graph + descriptor + billing period.
//!
//! In the paper's service model (§3), a customer-provider contract bundles
//! the stream processing application, its descriptor (PE selectivities,
//! per-tuple CPU costs, source rate distributions), and the SLA. Here the
//! descriptor attributes live on the graph edges and the [`ConfigSpace`];
//! [`Application`] ties them together with the billing period `T`.

use crate::config::ConfigSpace;
use crate::error::ModelError;
use crate::graph::ApplicationGraph;
use serde::{Deserialize, Serialize};

/// A validated stream processing application with its descriptor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Application {
    /// Application name (used in corpus reports).
    pub name: String,
    graph: ApplicationGraph,
    configs: ConfigSpace,
    /// Billing period `T` in seconds.
    billing_period: f64,
}

impl Application {
    /// Bundle a graph, its configuration space, and the billing period `T`
    /// (seconds). The configuration space must have been built against the
    /// same graph.
    pub fn new(
        name: &str,
        graph: ApplicationGraph,
        configs: ConfigSpace,
        billing_period: f64,
    ) -> Result<Self, ModelError> {
        if !(billing_period.is_finite() && billing_period > 0.0) {
            return Err(ModelError::InvalidBillingPeriod(billing_period));
        }
        if configs.num_sources() != graph.num_sources() {
            return Err(ModelError::InvalidRateSet(u32::MAX));
        }
        Ok(Self {
            name: name.to_owned(),
            graph,
            configs,
            billing_period,
        })
    }

    /// The dataflow graph.
    #[inline]
    pub fn graph(&self) -> &ApplicationGraph {
        &self.graph
    }

    /// The input configuration space and its probability mass function.
    #[inline]
    pub fn configs(&self) -> &ConfigSpace {
        &self.configs
    }

    /// Billing period `T` in seconds.
    #[inline]
    pub fn billing_period(&self) -> f64 {
        self.billing_period
    }

    /// Serialize the whole contract to pretty JSON.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("application serializes")
    }

    /// Parse a contract back from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn app() -> Application {
        let mut b = GraphBuilder::new();
        let s = b.add_source("s");
        let p = b.add_pe("p");
        let k = b.add_sink("k");
        b.connect(s, p, 1.0, 1.0e8).unwrap();
        b.connect_sink(p, k).unwrap();
        let g = b.build().unwrap();
        let cs = ConfigSpace::new(&g, vec![vec![4.0, 8.0]], vec![0.8, 0.2]).unwrap();
        Application::new("demo", g, cs, 300.0).unwrap()
    }

    #[test]
    fn construction() {
        let a = app();
        assert_eq!(a.billing_period(), 300.0);
        assert_eq!(a.graph().num_pes(), 1);
        assert_eq!(a.configs().num_configs(), 2);
    }

    #[test]
    fn non_positive_billing_period_rejected() {
        let a = app();
        let err = Application::new("x", a.graph().clone(), a.configs().clone(), 0.0).unwrap_err();
        assert_eq!(err, ModelError::InvalidBillingPeriod(0.0));
    }

    #[test]
    fn json_round_trip() {
        let a = app();
        let j = a.to_json_pretty();
        let a2 = Application::from_json(&j).unwrap();
        assert_eq!(a, a2);
    }
}
