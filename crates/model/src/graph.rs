//! The application dataflow graph (§3 of the paper).
//!
//! An application is a directed acyclic graph whose vertices are *data
//! sources*, *processing elements* (PEs), and *data sinks*, and whose edges
//! are stream connections annotated with the PE characteristics from the
//! application descriptor: *selectivity* `δ(xᵢ, xⱼ)` and *per-tuple CPU cost*
//! `γ(xᵢ, xⱼ)` (both attached to the edge going *into* a PE).

use crate::error::ModelError;
use serde::{Deserialize, Serialize};

/// Identifier of a component (source, PE, or sink) inside one application.
///
/// Ids are dense indices assigned in insertion order by [`GraphBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ComponentId(pub u32);

impl ComponentId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The role a component plays in the dataflow graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComponentKind {
    /// External data source: produces tuples, has no inputs.
    Source,
    /// Processing element: transforms input streams into one output stream.
    Pe,
    /// External data sink: consumes tuples, has no outputs.
    Sink,
}

/// A vertex of the application graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Component {
    /// Dense component id.
    pub id: ComponentId,
    /// Role of the component.
    pub kind: ComponentKind,
    /// Human-readable name (used in reports and serialized descriptors).
    pub name: String,
}

/// Identifier of an edge inside one application graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A stream connection between two components, annotated with the descriptor
/// attributes of the *downstream* PE for this input port.
///
/// For edges terminating at a data sink the annotations are unused; by
/// convention they are stored as selectivity `1.0` and cost `0.0`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Dense edge id.
    pub id: EdgeId,
    /// Upstream component.
    pub from: ComponentId,
    /// Downstream component.
    pub to: ComponentId,
    /// Selectivity `δ(from, to)`: expected output tuples of `to` produced per
    /// tuple received from `from`.
    pub selectivity: f64,
    /// Per-tuple CPU cost `γ(from, to)` in CPU cycles needed by `to` to
    /// process one tuple arriving from `from`.
    pub cpu_cost: f64,
}

/// An immutable, validated application dataflow graph.
///
/// Construction goes through [`GraphBuilder`], which checks acyclicity and
/// all structural invariants. Component ids are dense, so lookups are plain
/// vector indexing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApplicationGraph {
    components: Vec<Component>,
    edges: Vec<Edge>,
    /// For each component, ids of edges arriving at it.
    in_edges: Vec<Vec<EdgeId>>,
    /// For each component, ids of edges leaving it.
    out_edges: Vec<Vec<EdgeId>>,
    /// Components in one valid topological order.
    topo_order: Vec<ComponentId>,
    /// Dense index of each PE among PEs only (`None` for sources/sinks).
    pe_index: Vec<Option<u32>>,
    /// Dense index of each source among sources only.
    source_index: Vec<Option<u32>>,
    /// PEs in topological order.
    pes_topo: Vec<ComponentId>,
    sources: Vec<ComponentId>,
    sinks: Vec<ComponentId>,
}

impl ApplicationGraph {
    /// Number of components (sources + PEs + sinks).
    #[inline]
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// Number of processing elements.
    #[inline]
    pub fn num_pes(&self) -> usize {
        self.pes_topo.len()
    }

    /// Number of data sources.
    #[inline]
    pub fn num_sources(&self) -> usize {
        self.sources.len()
    }

    /// Number of data sinks.
    #[inline]
    pub fn num_sinks(&self) -> usize {
        self.sinks.len()
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// All components.
    #[inline]
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// The component with the given id.
    #[inline]
    pub fn component(&self, id: ComponentId) -> &Component {
        &self.components[id.index()]
    }

    /// All edges.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The edge with the given id.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Edges arriving at `id` (the `pred` function of eq. 1, with annotations).
    #[inline]
    pub fn in_edges(&self, id: ComponentId) -> impl Iterator<Item = &Edge> + '_ {
        self.in_edges[id.index()].iter().map(|e| self.edge(*e))
    }

    /// Edges leaving `id`.
    #[inline]
    pub fn out_edges(&self, id: ComponentId) -> impl Iterator<Item = &Edge> + '_ {
        self.out_edges[id.index()].iter().map(|e| self.edge(*e))
    }

    /// Predecessor components of `id`.
    pub fn predecessors(&self, id: ComponentId) -> impl Iterator<Item = ComponentId> + '_ {
        self.in_edges(id).map(|e| e.from)
    }

    /// Successor components of `id`.
    pub fn successors(&self, id: ComponentId) -> impl Iterator<Item = ComponentId> + '_ {
        self.out_edges(id).map(|e| e.to)
    }

    /// Number of incoming edges.
    #[inline]
    pub fn in_degree(&self, id: ComponentId) -> usize {
        self.in_edges[id.index()].len()
    }

    /// Number of outgoing edges.
    #[inline]
    pub fn out_degree(&self, id: ComponentId) -> usize {
        self.out_edges[id.index()].len()
    }

    /// All components in one valid topological order.
    #[inline]
    pub fn topological_order(&self) -> &[ComponentId] {
        &self.topo_order
    }

    /// All PEs in topological order.
    #[inline]
    pub fn pes(&self) -> &[ComponentId] {
        &self.pes_topo
    }

    /// All data sources (insertion order).
    #[inline]
    pub fn sources(&self) -> &[ComponentId] {
        &self.sources
    }

    /// All data sinks (insertion order).
    #[inline]
    pub fn sinks(&self) -> &[ComponentId] {
        &self.sinks
    }

    /// Dense index of a PE among the PEs (topological rank is *not* implied;
    /// this is an arbitrary but stable dense numbering used to index
    /// strategy/placement tables).
    #[inline]
    pub fn pe_dense_index(&self, id: ComponentId) -> Option<usize> {
        self.pe_index[id.index()].map(|i| i as usize)
    }

    /// Dense index of a source among the sources.
    #[inline]
    pub fn source_dense_index(&self, id: ComponentId) -> Option<usize> {
        self.source_index[id.index()].map(|i| i as usize)
    }

    /// `true` if the component is a PE.
    #[inline]
    pub fn is_pe(&self, id: ComponentId) -> bool {
        self.component(id).kind == ComponentKind::Pe
    }

    /// `true` if the component is a source.
    #[inline]
    pub fn is_source(&self, id: ComponentId) -> bool {
        self.component(id).kind == ComponentKind::Source
    }

    /// `true` if the component is a sink.
    #[inline]
    pub fn is_sink(&self, id: ComponentId) -> bool {
        self.component(id).kind == ComponentKind::Sink
    }

    /// Average out-degree over sources and PEs (a generator statistic used by
    /// the paper: "average outgoing node degree between 1.5 and 3").
    pub fn average_out_degree(&self) -> f64 {
        let non_sink: Vec<_> = self
            .components
            .iter()
            .filter(|c| c.kind != ComponentKind::Sink)
            .collect();
        if non_sink.is_empty() {
            return 0.0;
        }
        let total: usize = non_sink.iter().map(|c| self.out_degree(c.id)).sum();
        total as f64 / non_sink.len() as f64
    }
}

/// Incremental builder for [`ApplicationGraph`].
///
/// ```
/// use laar_model::graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new();
/// let src = b.add_source("source");
/// let pe1 = b.add_pe("pe1");
/// let pe2 = b.add_pe("pe2");
/// let sink = b.add_sink("sink");
/// b.connect(src, pe1, 1.0, 1.0e8).unwrap();
/// b.connect(pe1, pe2, 1.0, 1.0e8).unwrap();
/// b.connect_sink(pe2, sink).unwrap();
/// let graph = b.build().unwrap();
/// assert_eq!(graph.num_pes(), 2);
/// ```
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    components: Vec<Component>,
    edges: Vec<Edge>,
    /// Endpoint pairs of `edges`, for O(1) duplicate detection — the
    /// linear scan made building an E-edge graph O(E²), which dominated
    /// generation of the 100k-PE benchmark fixtures.
    edge_set: std::collections::HashSet<(ComponentId, ComponentId)>,
}

impl GraphBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn add_component(&mut self, kind: ComponentKind, name: &str) -> ComponentId {
        let id = ComponentId(self.components.len() as u32);
        self.components.push(Component {
            id,
            kind,
            name: name.to_owned(),
        });
        id
    }

    /// Add a data source.
    pub fn add_source(&mut self, name: &str) -> ComponentId {
        self.add_component(ComponentKind::Source, name)
    }

    /// Add a processing element.
    pub fn add_pe(&mut self, name: &str) -> ComponentId {
        self.add_component(ComponentKind::Pe, name)
    }

    /// Add a data sink.
    pub fn add_sink(&mut self, name: &str) -> ComponentId {
        self.add_component(ComponentKind::Sink, name)
    }

    /// Connect `from` to the PE `to` with the given selectivity `δ` and
    /// per-tuple CPU cost `γ` (cycles per tuple).
    pub fn connect(
        &mut self,
        from: ComponentId,
        to: ComponentId,
        selectivity: f64,
        cpu_cost: f64,
    ) -> Result<EdgeId, ModelError> {
        self.check_endpoints(from, to)?;
        if !(selectivity.is_finite() && selectivity >= 0.0) {
            return Err(ModelError::InvalidSelectivity {
                from: from.0,
                to: to.0,
                value: selectivity,
            });
        }
        if !(cpu_cost.is_finite() && cpu_cost >= 0.0) {
            return Err(ModelError::InvalidCpuCost {
                from: from.0,
                to: to.0,
                value: cpu_cost,
            });
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge {
            id,
            from,
            to,
            selectivity,
            cpu_cost,
        });
        self.edge_set.insert((from, to));
        Ok(id)
    }

    /// Connect a PE to a data sink (no selectivity/cost semantics).
    pub fn connect_sink(
        &mut self,
        from: ComponentId,
        to: ComponentId,
    ) -> Result<EdgeId, ModelError> {
        self.connect(from, to, 1.0, 0.0)
    }

    fn check_endpoints(&self, from: ComponentId, to: ComponentId) -> Result<(), ModelError> {
        let n = self.components.len() as u32;
        if from.0 >= n {
            return Err(ModelError::UnknownComponent(from.0));
        }
        if to.0 >= n {
            return Err(ModelError::UnknownComponent(to.0));
        }
        if self.components[to.index()].kind == ComponentKind::Source {
            return Err(ModelError::EdgeIntoSource(to.0));
        }
        if self.components[from.index()].kind == ComponentKind::Sink {
            return Err(ModelError::EdgeFromSink(from.0));
        }
        if self.edge_set.contains(&(from, to)) {
            return Err(ModelError::DuplicateEdge {
                from: from.0,
                to: to.0,
            });
        }
        Ok(())
    }

    /// Validate all structural invariants and freeze the graph.
    pub fn build(self) -> Result<ApplicationGraph, ModelError> {
        let n = self.components.len();
        let mut in_edges = vec![Vec::new(); n];
        let mut out_edges = vec![Vec::new(); n];
        for e in &self.edges {
            in_edges[e.to.index()].push(e.id);
            out_edges[e.from.index()].push(e.id);
        }

        // Connectivity checks.
        for c in &self.components {
            match c.kind {
                ComponentKind::Source => {
                    if out_edges[c.id.index()].is_empty() {
                        return Err(ModelError::DisconnectedSource(c.id.0));
                    }
                }
                ComponentKind::Pe => {
                    if in_edges[c.id.index()].is_empty() {
                        return Err(ModelError::DisconnectedPe(c.id.0));
                    }
                }
                ComponentKind::Sink => {
                    if in_edges[c.id.index()].is_empty() {
                        return Err(ModelError::DisconnectedSink(c.id.0));
                    }
                }
            }
        }

        // Kahn's algorithm [20] for topological sorting; also detects cycles.
        let mut indeg: Vec<usize> = in_edges.iter().map(Vec::len).collect();
        let mut queue: std::collections::VecDeque<ComponentId> = self
            .components
            .iter()
            .filter(|c| indeg[c.id.index()] == 0)
            .map(|c| c.id)
            .collect();
        let mut topo_order = Vec::with_capacity(n);
        while let Some(c) = queue.pop_front() {
            topo_order.push(c);
            for &eid in &out_edges[c.index()] {
                let to = self.edges[eid.index()].to;
                indeg[to.index()] -= 1;
                if indeg[to.index()] == 0 {
                    queue.push_back(to);
                }
            }
        }
        if topo_order.len() != n {
            return Err(ModelError::CyclicGraph);
        }

        let mut pe_index = vec![None; n];
        let mut source_index = vec![None; n];
        let mut pes_topo = Vec::new();
        let mut sources = Vec::new();
        let mut sinks = Vec::new();
        for &cid in &topo_order {
            if self.components[cid.index()].kind == ComponentKind::Pe {
                pe_index[cid.index()] = Some(pes_topo.len() as u32);
                pes_topo.push(cid);
            }
        }
        for c in &self.components {
            match c.kind {
                ComponentKind::Source => {
                    source_index[c.id.index()] = Some(sources.len() as u32);
                    sources.push(c.id);
                }
                ComponentKind::Sink => sinks.push(c.id),
                ComponentKind::Pe => {}
            }
        }

        Ok(ApplicationGraph {
            components: self.components,
            edges: self.edges,
            in_edges,
            out_edges,
            topo_order,
            pe_index,
            source_index,
            pes_topo,
            sources,
            sinks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipeline() -> ApplicationGraph {
        let mut b = GraphBuilder::new();
        let s = b.add_source("src");
        let p1 = b.add_pe("pe1");
        let p2 = b.add_pe("pe2");
        let k = b.add_sink("sink");
        b.connect(s, p1, 1.0, 100.0).unwrap();
        b.connect(p1, p2, 0.5, 200.0).unwrap();
        b.connect_sink(p2, k).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builds_simple_pipeline() {
        let g = pipeline();
        assert_eq!(g.num_components(), 4);
        assert_eq!(g.num_pes(), 2);
        assert_eq!(g.num_sources(), 1);
        assert_eq!(g.num_sinks(), 1);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn predecessors_and_successors() {
        let g = pipeline();
        let p2 = g.pes()[1];
        let preds: Vec<_> = g.predecessors(p2).collect();
        assert_eq!(preds, vec![g.pes()[0]]);
        let succs: Vec<_> = g.successors(p2).collect();
        assert_eq!(succs, vec![g.sinks()[0]]);
    }

    #[test]
    fn topological_order_respects_edges() {
        let g = pipeline();
        let pos: Vec<usize> = (0..g.num_components())
            .map(|i| {
                g.topological_order()
                    .iter()
                    .position(|c| c.index() == i)
                    .unwrap()
            })
            .collect();
        for e in g.edges() {
            assert!(pos[e.from.index()] < pos[e.to.index()]);
        }
    }

    #[test]
    fn cycle_is_rejected() {
        let mut b = GraphBuilder::new();
        let s = b.add_source("src");
        let p1 = b.add_pe("pe1");
        let p2 = b.add_pe("pe2");
        let k = b.add_sink("sink");
        b.connect(s, p1, 1.0, 1.0).unwrap();
        b.connect(p1, p2, 1.0, 1.0).unwrap();
        b.connect(p2, p1, 1.0, 1.0).unwrap();
        b.connect_sink(p2, k).unwrap();
        assert_eq!(b.build().unwrap_err(), ModelError::CyclicGraph);
    }

    #[test]
    fn edge_into_source_is_rejected() {
        let mut b = GraphBuilder::new();
        let s = b.add_source("src");
        let p = b.add_pe("pe");
        assert_eq!(
            b.connect(p, s, 1.0, 1.0).unwrap_err(),
            ModelError::EdgeIntoSource(s.0)
        );
    }

    #[test]
    fn edge_from_sink_is_rejected() {
        let mut b = GraphBuilder::new();
        let k = b.add_sink("sink");
        let p = b.add_pe("pe");
        assert_eq!(
            b.connect(k, p, 1.0, 1.0).unwrap_err(),
            ModelError::EdgeFromSink(k.0)
        );
    }

    #[test]
    fn duplicate_edge_is_rejected() {
        let mut b = GraphBuilder::new();
        let s = b.add_source("src");
        let p = b.add_pe("pe");
        b.connect(s, p, 1.0, 1.0).unwrap();
        assert!(matches!(
            b.connect(s, p, 1.0, 1.0),
            Err(ModelError::DuplicateEdge { .. })
        ));
    }

    #[test]
    fn disconnected_pe_is_rejected() {
        let mut b = GraphBuilder::new();
        let s = b.add_source("src");
        let p1 = b.add_pe("pe1");
        let _p2 = b.add_pe("orphan");
        let k = b.add_sink("sink");
        b.connect(s, p1, 1.0, 1.0).unwrap();
        b.connect_sink(p1, k).unwrap();
        assert!(matches!(b.build(), Err(ModelError::DisconnectedPe(_))));
    }

    #[test]
    fn negative_selectivity_is_rejected() {
        let mut b = GraphBuilder::new();
        let s = b.add_source("src");
        let p = b.add_pe("pe");
        assert!(matches!(
            b.connect(s, p, -0.5, 1.0),
            Err(ModelError::InvalidSelectivity { .. })
        ));
    }

    #[test]
    fn nan_cost_is_rejected() {
        let mut b = GraphBuilder::new();
        let s = b.add_source("src");
        let p = b.add_pe("pe");
        assert!(matches!(
            b.connect(s, p, 1.0, f64::NAN),
            Err(ModelError::InvalidCpuCost { .. })
        ));
    }

    #[test]
    fn pe_dense_indices_are_dense_and_topological() {
        let g = pipeline();
        let idx: Vec<usize> = g
            .pes()
            .iter()
            .map(|&p| g.pe_dense_index(p).unwrap())
            .collect();
        assert_eq!(idx, vec![0, 1]);
        assert_eq!(g.pe_dense_index(g.sources()[0]), None);
    }

    #[test]
    fn diamond_graph_fanout() {
        // src -> a -> {b, c} -> d -> sink
        let mut b = GraphBuilder::new();
        let s = b.add_source("src");
        let a = b.add_pe("a");
        let x = b.add_pe("b");
        let y = b.add_pe("c");
        let d = b.add_pe("d");
        let k = b.add_sink("sink");
        b.connect(s, a, 1.0, 1.0).unwrap();
        b.connect(a, x, 0.7, 2.0).unwrap();
        b.connect(a, y, 1.3, 3.0).unwrap();
        b.connect(x, d, 1.0, 4.0).unwrap();
        b.connect(y, d, 1.0, 5.0).unwrap();
        b.connect_sink(d, k).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.in_degree(d), 2);
        assert_eq!(g.out_degree(a), 2);
        let preds: Vec<_> = g.predecessors(d).collect();
        assert!(preds.contains(&x) && preds.contains(&y));
    }

    #[test]
    fn average_out_degree_pipeline() {
        let g = pipeline();
        // src:1, pe1:1, pe2:1 over 3 non-sink components
        assert!((g.average_out_degree() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn serde_round_trip() {
        let g = pipeline();
        let s = serde_json::to_string(&g).unwrap();
        let g2: ApplicationGraph = serde_json::from_str(&s).unwrap();
        assert_eq!(g, g2);
    }
}
