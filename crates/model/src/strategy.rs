//! Replica activation strategies (§4.2, eq. 4).
//!
//! A strategy is the function `s : P̃ × C → {0, 1}` mapping every
//! (PE replica, input configuration) pair to an active/inactive state. The
//! paper's runtime loads strategies from a JSON file into the HAController;
//! [`ActivationStrategy`] serializes to/from that format.

use crate::config::ConfigId;
use crate::error::ModelError;
use crate::graph::ApplicationGraph;
use serde::{Deserialize, Serialize};

/// A dense activation table `s(x̃ᵢ,ⱼ, c)`.
///
/// Bits are laid out as `[pe_dense][config][replica]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivationStrategy {
    num_pes: usize,
    num_configs: usize,
    k: usize,
    bits: Vec<bool>,
}

impl ActivationStrategy {
    /// A strategy with every replica active in every configuration — the
    /// *static replication* (SR) baseline.
    pub fn all_active(num_pes: usize, num_configs: usize, k: usize) -> Self {
        Self {
            num_pes,
            num_configs,
            k,
            bits: vec![true; num_pes * num_configs * k],
        }
    }

    /// A strategy with every replica inactive (must be filled before it
    /// validates — eq. 12 requires at least one active replica everywhere).
    pub fn all_inactive(num_pes: usize, num_configs: usize, k: usize) -> Self {
        Self {
            num_pes,
            num_configs,
            k,
            bits: vec![false; num_pes * num_configs * k],
        }
    }

    /// Number of PEs.
    #[inline]
    pub fn num_pes(&self) -> usize {
        self.num_pes
    }

    /// Number of input configurations.
    #[inline]
    pub fn num_configs(&self) -> usize {
        self.num_configs
    }

    /// Replication factor.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    #[inline]
    fn offset(&self, pe_dense: usize, config: ConfigId, replica: usize) -> usize {
        debug_assert!(pe_dense < self.num_pes);
        debug_assert!(config.index() < self.num_configs);
        debug_assert!(replica < self.k);
        (pe_dense * self.num_configs + config.index()) * self.k + replica
    }

    /// `s(x̃, c)`: is replica `replica` of the PE with dense index `pe_dense`
    /// active in configuration `config`?
    #[inline]
    pub fn is_active(&self, pe_dense: usize, config: ConfigId, replica: usize) -> bool {
        self.bits[self.offset(pe_dense, config, replica)]
    }

    /// Set the activation state of one replica in one configuration.
    #[inline]
    pub fn set_active(&mut self, pe_dense: usize, config: ConfigId, replica: usize, active: bool) {
        let o = self.offset(pe_dense, config, replica);
        self.bits[o] = active;
    }

    /// Number of active replicas of a PE in a configuration
    /// (`Σₕ s(x̃ᵢ,ₕ, c)`).
    pub fn active_count(&self, pe_dense: usize, config: ConfigId) -> usize {
        (0..self.k)
            .filter(|&r| self.is_active(pe_dense, config, r))
            .count()
    }

    /// `true` when *all* `k` replicas of the PE are active in `config` — the
    /// condition under which the pessimistic failure model (eq. 14) counts
    /// the PE as surviving.
    #[inline]
    pub fn fully_replicated(&self, pe_dense: usize, config: ConfigId) -> bool {
        self.active_count(pe_dense, config) == self.k
    }

    /// Total number of active replica slots across the whole table (a cheap
    /// proxy for strategy "weight", used by tests and reports).
    pub fn total_active(&self) -> usize {
        self.bits.iter().filter(|b| **b).count()
    }

    /// Validate the strategy against an application graph and configuration
    /// count: shape must match and eq. 12 must hold (at least one active
    /// replica of every PE in every configuration).
    pub fn validate(
        &self,
        graph: &ApplicationGraph,
        num_configs: usize,
        k: usize,
    ) -> Result<(), ModelError> {
        if self.num_pes != graph.num_pes() || self.num_configs != num_configs || self.k != k {
            return Err(ModelError::StrategyShape {
                expected_pes: graph.num_pes(),
                expected_configs: num_configs,
                expected_k: k,
            });
        }
        for (dense, &pe) in graph.pes().iter().enumerate() {
            for c in 0..num_configs {
                if self.active_count(dense, ConfigId(c as u32)) == 0 {
                    return Err(ModelError::NoActiveReplica {
                        pe: pe.0,
                        config: c as u32,
                    });
                }
            }
        }
        Ok(())
    }

    /// Render one PE/configuration cell as a bit-string like `"11"` or `"10"`
    /// (replica 0 first) — the format used in human-readable strategy dumps.
    pub fn cell_string(&self, pe_dense: usize, config: ConfigId) -> String {
        (0..self.k)
            .map(|r| {
                if self.is_active(pe_dense, config, r) {
                    '1'
                } else {
                    '0'
                }
            })
            .collect()
    }

    /// Serialize to the JSON document the HAController consumes (§5.1): a map
    /// from PE name to the per-configuration bit-strings.
    pub fn to_controller_json(&self, graph: &ApplicationGraph) -> serde_json::Value {
        let mut map = serde_json::Map::new();
        for (dense, &pe) in graph.pes().iter().enumerate() {
            let cells: Vec<String> = (0..self.num_configs)
                .map(|c| self.cell_string(dense, ConfigId(c as u32)))
                .collect();
            map.insert(graph.component(pe).name.clone(), serde_json::json!(cells));
        }
        serde_json::json!({
            "k": self.k,
            "num_configs": self.num_configs,
            "activations": serde_json::Value::Object(map),
        })
    }

    /// Parse the HAController JSON document back into a strategy; PE order is
    /// resolved through the graph's PE names.
    pub fn from_controller_json(
        graph: &ApplicationGraph,
        doc: &serde_json::Value,
    ) -> Result<Self, ModelError> {
        let k = doc["k"].as_u64().ok_or(ModelError::StrategyShape {
            expected_pes: graph.num_pes(),
            expected_configs: 0,
            expected_k: 0,
        })? as usize;
        let num_configs = doc["num_configs"]
            .as_u64()
            .ok_or(ModelError::StrategyShape {
                expected_pes: graph.num_pes(),
                expected_configs: 0,
                expected_k: k,
            })? as usize;
        let mut s = Self::all_inactive(graph.num_pes(), num_configs, k);
        let activations = doc["activations"]
            .as_object()
            .ok_or(ModelError::StrategyShape {
                expected_pes: graph.num_pes(),
                expected_configs: num_configs,
                expected_k: k,
            })?;
        for (dense, &pe) in graph.pes().iter().enumerate() {
            let name = &graph.component(pe).name;
            let cells = activations.get(name).and_then(|v| v.as_array()).ok_or(
                ModelError::StrategyShape {
                    expected_pes: graph.num_pes(),
                    expected_configs: num_configs,
                    expected_k: k,
                },
            )?;
            if cells.len() != num_configs {
                return Err(ModelError::StrategyShape {
                    expected_pes: graph.num_pes(),
                    expected_configs: num_configs,
                    expected_k: k,
                });
            }
            for (c, cell) in cells.iter().enumerate() {
                let bits = cell.as_str().unwrap_or("");
                if bits.len() != k {
                    return Err(ModelError::StrategyShape {
                        expected_pes: graph.num_pes(),
                        expected_configs: num_configs,
                        expected_k: k,
                    });
                }
                for (r, ch) in bits.chars().enumerate() {
                    s.set_active(dense, ConfigId(c as u32), r, ch == '1');
                }
            }
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn graph() -> ApplicationGraph {
        let mut b = GraphBuilder::new();
        let s = b.add_source("s");
        let p1 = b.add_pe("p1");
        let p2 = b.add_pe("p2");
        let k = b.add_sink("k");
        b.connect(s, p1, 1.0, 1.0).unwrap();
        b.connect(p1, p2, 1.0, 1.0).unwrap();
        b.connect_sink(p2, k).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn all_active_validates() {
        let g = graph();
        let s = ActivationStrategy::all_active(2, 2, 2);
        s.validate(&g, 2, 2).unwrap();
        assert_eq!(s.total_active(), 8);
        assert!(s.fully_replicated(0, ConfigId(0)));
    }

    #[test]
    fn all_inactive_fails_eq12() {
        let g = graph();
        let s = ActivationStrategy::all_inactive(2, 2, 2);
        assert!(matches!(
            s.validate(&g, 2, 2),
            Err(ModelError::NoActiveReplica { .. })
        ));
    }

    #[test]
    fn set_and_get() {
        let mut s = ActivationStrategy::all_active(3, 2, 2);
        s.set_active(1, ConfigId(1), 0, false);
        assert!(!s.is_active(1, ConfigId(1), 0));
        assert!(s.is_active(1, ConfigId(1), 1));
        assert_eq!(s.active_count(1, ConfigId(1)), 1);
        assert!(!s.fully_replicated(1, ConfigId(1)));
        assert_eq!(s.cell_string(1, ConfigId(1)), "01");
    }

    #[test]
    fn shape_mismatch_rejected() {
        let g = graph();
        let s = ActivationStrategy::all_active(5, 2, 2);
        assert!(matches!(
            s.validate(&g, 2, 2),
            Err(ModelError::StrategyShape { .. })
        ));
    }

    #[test]
    fn controller_json_round_trip() {
        let g = graph();
        let mut s = ActivationStrategy::all_active(2, 2, 2);
        s.set_active(0, ConfigId(1), 1, false);
        s.set_active(1, ConfigId(0), 0, false);
        let doc = s.to_controller_json(&g);
        let s2 = ActivationStrategy::from_controller_json(&g, &doc).unwrap();
        assert_eq!(s, s2);
    }

    #[test]
    fn controller_json_has_pe_names() {
        let g = graph();
        let s = ActivationStrategy::all_active(2, 2, 2);
        let doc = s.to_controller_json(&g);
        assert!(doc["activations"].get("p1").is_some());
        assert!(doc["activations"].get("p2").is_some());
    }

    #[test]
    fn serde_round_trip() {
        let s = ActivationStrategy::all_active(2, 3, 2);
        let j = serde_json::to_string(&s).unwrap();
        let s2: ActivationStrategy = serde_json::from_str(&j).unwrap();
        assert_eq!(s, s2);
    }
}
