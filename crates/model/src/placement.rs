//! Hosts and replicated placements (§4.2).
//!
//! A placement algorithm (outside LAAR's scope, e.g. COLA \[21\]) assigns `k`
//! replicas of each PE to a set of hosts `H`; the assignment is the function
//! `ϑ : P̃ → H`. LAAR consumes the placement; this module represents and
//! validates it.

use crate::error::ModelError;
use crate::graph::{ApplicationGraph, ComponentId};
use serde::{Deserialize, Serialize};

/// Identifier of a deployment host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct HostId(pub u32);

impl HostId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A deployment host with CPU capacity `K` (cycles per second available to
/// application PEs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Host {
    /// Dense host id.
    pub id: HostId,
    /// Host name for reports.
    pub name: String,
    /// CPU capacity `K` in cycles per second.
    pub capacity: f64,
}

/// Identifier of one replica of one PE: the paper's `x̃ᵢ,ⱼ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ReplicaId {
    /// The PE this replica belongs to.
    pub pe: ComponentId,
    /// Replica index in `0..k`.
    pub replica: u8,
}

impl ReplicaId {
    /// Construct a replica id.
    #[inline]
    pub fn new(pe: ComponentId, replica: u8) -> Self {
        Self { pe, replica }
    }
}

/// A validated replicated assignment `ϑ : P̃ → H`.
///
/// Indexing is dense: `assignment[pe_dense_index * k + replica]` holds the
/// host of that replica.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Replication factor `k` (the paper's FT-Search fixes `k = 2`).
    k: usize,
    hosts: Vec<Host>,
    /// Host of replica `j` of the PE with dense index `i`, at `i * k + j`.
    assignment: Vec<HostId>,
    /// Number of PEs covered (must equal the graph's PE count).
    num_pes: usize,
}

impl Placement {
    /// Build and validate a placement.
    ///
    /// `assignment[i * k + j]` must be the host of replica `j` of the PE with
    /// dense index `i` (see [`ApplicationGraph::pe_dense_index`]). Validation
    /// enforces: full coverage, known hosts, positive capacities, and — so
    /// that a single host failure can never take down both replicas —
    /// replicas of the same PE on distinct hosts (only checked when the
    /// deployment has more than one host).
    pub fn new(
        graph: &ApplicationGraph,
        k: usize,
        hosts: Vec<Host>,
        assignment: Vec<HostId>,
    ) -> Result<Self, ModelError> {
        let num_pes = graph.num_pes();
        if assignment.len() != num_pes * k {
            return Err(ModelError::IncompletePlacement);
        }
        for h in &hosts {
            if !(h.capacity.is_finite() && h.capacity > 0.0) {
                return Err(ModelError::InvalidCapacity {
                    host: h.id.0,
                    value: h.capacity,
                });
            }
        }
        for &h in &assignment {
            if h.index() >= hosts.len() {
                return Err(ModelError::UnknownHost(h.0));
            }
        }
        if hosts.len() > 1 {
            for (i, &pe) in graph.pes().iter().enumerate() {
                for a in 0..k {
                    for b in (a + 1)..k {
                        if assignment[i * k + a] == assignment[i * k + b] {
                            return Err(ModelError::CoLocatedReplicas {
                                pe: pe.0,
                                host: assignment[i * k + a].0,
                            });
                        }
                    }
                }
            }
        }
        Ok(Self {
            k,
            hosts,
            assignment,
            num_pes,
        })
    }

    /// Replication factor `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of PEs covered by the placement.
    #[inline]
    pub fn num_pes(&self) -> usize {
        self.num_pes
    }

    /// The deployment hosts.
    #[inline]
    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    /// Number of hosts.
    #[inline]
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// `ϑ(x̃)` by dense PE index and replica index.
    #[inline]
    pub fn host_of(&self, pe_dense: usize, replica: usize) -> HostId {
        self.assignment[pe_dense * self.k + replica]
    }

    /// `ϑ(x̃)` for a [`ReplicaId`], resolving the PE's dense index through the
    /// graph.
    pub fn host_of_replica(&self, graph: &ApplicationGraph, r: ReplicaId) -> Option<HostId> {
        let dense = graph.pe_dense_index(r.pe)?;
        Some(self.host_of(dense, r.replica as usize))
    }

    /// `ϑ⁻¹(h)`: all `(pe_dense, replica)` pairs deployed on host `h`.
    pub fn replicas_on(&self, h: HostId) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for pe in 0..self.num_pes {
            for r in 0..self.k {
                if self.assignment[pe * self.k + r] == h {
                    out.push((pe, r));
                }
            }
        }
        out
    }

    /// Capacity of host `h`.
    #[inline]
    pub fn capacity(&self, h: HostId) -> f64 {
        self.hosts[h.index()].capacity
    }

    /// Total capacity of the deployment.
    pub fn total_capacity(&self) -> f64 {
        self.hosts.iter().map(|h| h.capacity).sum()
    }

    /// Convenience: build `n` uniform hosts with the given capacity.
    pub fn uniform_hosts(n: usize, capacity: f64) -> Vec<Host> {
        (0..n)
            .map(|i| Host {
                id: HostId(i as u32),
                name: format!("host{i}"),
                capacity,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn two_pe_graph() -> ApplicationGraph {
        let mut b = GraphBuilder::new();
        let s = b.add_source("s");
        let p1 = b.add_pe("p1");
        let p2 = b.add_pe("p2");
        let k = b.add_sink("k");
        b.connect(s, p1, 1.0, 1.0).unwrap();
        b.connect(p1, p2, 1.0, 1.0).unwrap();
        b.connect_sink(p2, k).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn valid_two_host_placement() {
        let g = two_pe_graph();
        let hosts = Placement::uniform_hosts(2, 1e9);
        // replica 0 on host 0, replica 1 on host 1 for both PEs
        let assignment = vec![HostId(0), HostId(1), HostId(0), HostId(1)];
        let p = Placement::new(&g, 2, hosts, assignment).unwrap();
        assert_eq!(p.host_of(0, 0), HostId(0));
        assert_eq!(p.host_of(0, 1), HostId(1));
        assert_eq!(p.replicas_on(HostId(0)), vec![(0, 0), (1, 0)]);
        assert_eq!(p.total_capacity(), 2e9);
    }

    #[test]
    fn colocated_replicas_rejected() {
        let g = two_pe_graph();
        let hosts = Placement::uniform_hosts(2, 1e9);
        let assignment = vec![HostId(0), HostId(0), HostId(0), HostId(1)];
        assert!(matches!(
            Placement::new(&g, 2, hosts, assignment),
            Err(ModelError::CoLocatedReplicas { .. })
        ));
    }

    #[test]
    fn single_host_allows_colocated() {
        let g = two_pe_graph();
        let hosts = Placement::uniform_hosts(1, 1e9);
        let assignment = vec![HostId(0); 4];
        assert!(Placement::new(&g, 2, hosts, assignment).is_ok());
    }

    #[test]
    fn incomplete_assignment_rejected() {
        let g = two_pe_graph();
        let hosts = Placement::uniform_hosts(2, 1e9);
        assert_eq!(
            Placement::new(&g, 2, hosts, vec![HostId(0)]).unwrap_err(),
            ModelError::IncompletePlacement
        );
    }

    #[test]
    fn unknown_host_rejected() {
        let g = two_pe_graph();
        let hosts = Placement::uniform_hosts(2, 1e9);
        let assignment = vec![HostId(0), HostId(7), HostId(0), HostId(1)];
        assert_eq!(
            Placement::new(&g, 2, hosts, assignment).unwrap_err(),
            ModelError::UnknownHost(7)
        );
    }

    #[test]
    fn non_positive_capacity_rejected() {
        let g = two_pe_graph();
        let mut hosts = Placement::uniform_hosts(2, 1e9);
        hosts[1].capacity = 0.0;
        let assignment = vec![HostId(0), HostId(1), HostId(0), HostId(1)];
        assert!(matches!(
            Placement::new(&g, 2, hosts, assignment),
            Err(ModelError::InvalidCapacity { .. })
        ));
    }

    #[test]
    fn host_of_replica_through_graph() {
        let g = two_pe_graph();
        let hosts = Placement::uniform_hosts(2, 1e9);
        let assignment = vec![HostId(0), HostId(1), HostId(1), HostId(0)];
        let p = Placement::new(&g, 2, hosts, assignment).unwrap();
        let pe2 = g.pes()[1];
        assert_eq!(
            p.host_of_replica(&g, ReplicaId::new(pe2, 0)),
            Some(HostId(1))
        );
        // Sources have no dense PE index.
        assert_eq!(
            p.host_of_replica(&g, ReplicaId::new(g.sources()[0], 0)),
            None
        );
    }

    #[test]
    fn serde_round_trip() {
        let g = two_pe_graph();
        let hosts = Placement::uniform_hosts(2, 1e9);
        let assignment = vec![HostId(0), HostId(1), HostId(0), HostId(1)];
        let p = Placement::new(&g, 2, hosts, assignment).unwrap();
        let s = serde_json::to_string(&p).unwrap();
        let p2: Placement = serde_json::from_str(&s).unwrap();
        assert_eq!(p, p2);
    }
}
