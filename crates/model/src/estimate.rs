//! Descriptor re-estimation: a measured replacement for the declared
//! input-configuration distribution.
//!
//! The contract descriptor (§3) declares per-source rate *levels* and a pmf
//! over the resulting configurations; everything the optimizer computes —
//! rates `Δ` (eq. 5), CPU loads (eq. 11), cost (eq. 13), the IC bound
//! (eq. 14) — is evaluated against those declared numbers. When production
//! traffic drifts, a [`DescriptorEstimate`] captures what the monitor
//! *measured* in the same shape (one re-estimated rate per declared level,
//! one re-estimated probability per configuration) so the whole analysis
//! stack can be re-run unchanged on the corrected descriptor.
//!
//! Because the load model is linear in the source rates (every `Δ(x, c)` is
//! a fixed linear combination of the configuration's source rates), a
//! relative error of at most `ε` on every rate level bounds the relative
//! error of every derived per-configuration rate, load, and cost term by
//! the same `ε` — which is what lets a drift detector translate
//! [`max_rate_drift`](DescriptorEstimate::max_rate_drift) directly into a
//! bound on how wrong the incumbent strategy's cost/IC numbers have become.

use crate::app::Application;
use crate::config::ConfigSpace;
use crate::error::ModelError;
use serde::{Deserialize, Serialize};

/// A re-estimated descriptor: measured rate levels and configuration
/// probabilities in the declared descriptor's shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DescriptorEstimate {
    /// Re-estimated rate levels, `rates[source][level]`, same cardinality
    /// as the declared rate sets.
    pub rates: Vec<Vec<f64>>,
    /// Re-estimated configuration probabilities (same indexing as the
    /// declared configuration space). Need not be exactly normalized;
    /// [`apply`](Self::apply) renormalizes.
    pub probs: Vec<f64>,
}

impl DescriptorEstimate {
    /// The identity estimate: exactly the declared descriptor.
    pub fn declared(space: &ConfigSpace) -> Self {
        Self {
            rates: (0..space.num_sources())
                .map(|s| space.rate_set(s).to_vec())
                .collect(),
            probs: space.configs().map(|c| space.prob(c)).collect(),
        }
    }

    /// Largest relative deviation of any re-estimated rate level from its
    /// declared value: `max |est − decl| / decl`. Under the linear load
    /// model this bounds the relative error of every rate/load/cost term
    /// the incumbent strategy was optimized against.
    pub fn max_rate_drift(&self, space: &ConfigSpace) -> f64 {
        let mut worst = 0.0f64;
        for s in 0..space.num_sources().min(self.rates.len()) {
            let declared = space.rate_set(s);
            for (l, &est) in self.rates[s].iter().enumerate().take(declared.len()) {
                let d = declared[l];
                if d > 0.0 {
                    worst = worst.max((est - d).abs() / d);
                }
            }
        }
        worst
    }

    /// Total-variation distance between the re-estimated and the declared
    /// configuration pmf (`½ Σ |p̂ − p|`, after normalizing the estimate).
    pub fn prob_drift(&self, space: &ConfigSpace) -> f64 {
        let sum: f64 = self.probs.iter().sum();
        if sum <= 0.0 || self.probs.len() != space.num_configs() {
            return 0.0;
        }
        0.5 * self
            .probs
            .iter()
            .zip(space.configs())
            .map(|(&p, c)| (p / sum - space.prob(c)).abs())
            .sum::<f64>()
    }

    /// Build the re-estimated application: the same graph and billing
    /// period with the configuration space rebuilt from the estimate
    /// (probabilities renormalized). Fails if the estimate's shape does not
    /// match the graph or any value is invalid.
    pub fn apply(&self, app: &Application) -> Result<Application, ModelError> {
        let sum: f64 = self.probs.iter().sum();
        if !(sum.is_finite() && sum > 0.0) {
            return Err(ModelError::ProbabilityMass(sum));
        }
        let probs: Vec<f64> = self.probs.iter().map(|p| p / sum).collect();
        let cs = ConfigSpace::new(app.graph(), self.rates.clone(), probs)?;
        Application::new(&app.name, app.graph().clone(), cs, app.billing_period())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn app() -> Application {
        let mut b = GraphBuilder::new();
        let s = b.add_source("s");
        let p = b.add_pe("p");
        let k = b.add_sink("k");
        b.connect(s, p, 1.0, 100.0).unwrap();
        b.connect_sink(p, k).unwrap();
        let g = b.build().unwrap();
        let cs = ConfigSpace::new(&g, vec![vec![4.0, 8.0]], vec![0.8, 0.2]).unwrap();
        Application::new("demo", g, cs, 300.0).unwrap()
    }

    #[test]
    fn declared_estimate_is_driftless() {
        let a = app();
        let e = DescriptorEstimate::declared(a.configs());
        assert_eq!(e.max_rate_drift(a.configs()), 0.0);
        assert_eq!(e.prob_drift(a.configs()), 0.0);
        let a2 = e.apply(&a).unwrap();
        assert_eq!(a2.configs(), a.configs());
    }

    #[test]
    fn rate_drift_is_max_relative_deviation() {
        let a = app();
        let mut e = DescriptorEstimate::declared(a.configs());
        e.rates[0][1] = 12.0; // High drifted 8 -> 12: 50 %
        assert!((e.max_rate_drift(a.configs()) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn prob_drift_is_total_variation() {
        let a = app();
        let mut e = DescriptorEstimate::declared(a.configs());
        e.probs = vec![0.5, 0.5];
        assert!((e.prob_drift(a.configs()) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn apply_renormalizes_probabilities() {
        let a = app();
        let mut e = DescriptorEstimate::declared(a.configs());
        e.probs = vec![3.0, 1.0]; // occupancy counts, not a pmf
        e.rates[0][1] = 10.0;
        let a2 = e.apply(&a).unwrap();
        assert!((a2.configs().prob(crate::config::ConfigId(0)) - 0.75).abs() < 1e-12);
        assert_eq!(a2.configs().rate_set(0), &[4.0, 10.0]);
        assert_eq!(a2.billing_period(), a.billing_period());
    }

    #[test]
    fn apply_rejects_degenerate_probabilities() {
        let a = app();
        let mut e = DescriptorEstimate::declared(a.configs());
        e.probs = vec![0.0, 0.0];
        assert!(e.apply(&a).is_err());
    }
}
