//! Input configurations (§4.2).
//!
//! Every data source `xᵢ` produces at one rate drawn from a finite set `Rᵢ`.
//! The Cartesian product `C = R₁ × … × Rₜ` is the set of *input
//! configurations*; the probability mass function `P_C : C → [0,1]` gives the
//! expected fraction of a billing period spent in each configuration.

use crate::error::ModelError;
use crate::graph::{ApplicationGraph, ComponentId};
use serde::{Deserialize, Serialize};

/// Identifier of an input configuration: a flat index into the Cartesian
/// product of the per-source rate sets (mixed-radix encoding, first source is
/// the most significant digit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ConfigId(pub u32);

impl ConfigId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The discrete space of input configurations with its probability mass
/// function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigSpace {
    /// Sources, in the order their rates are encoded (must match the graph's
    /// dense source order).
    source_ids: Vec<ComponentId>,
    /// `rates[i]` is the rate set `Rᵢ` (tuples/second) of source `i`.
    rates: Vec<Vec<f64>>,
    /// Flat probability table over the Cartesian product, `P_C`.
    probs: Vec<f64>,
    /// Mixed-radix strides: `config = Σ idx[i] * strides[i]`.
    strides: Vec<usize>,
}

impl ConfigSpace {
    /// Build a configuration space with a *joint* probability table over the
    /// Cartesian product of per-source rate sets.
    ///
    /// `rates[i]` lists the possible rates of the `i`-th source in
    /// `graph.sources()` order; `probs` has one entry per configuration in
    /// mixed-radix order.
    pub fn new(
        graph: &ApplicationGraph,
        rates: Vec<Vec<f64>>,
        probs: Vec<f64>,
    ) -> Result<Self, ModelError> {
        let source_ids: Vec<ComponentId> = graph.sources().to_vec();
        if rates.len() != source_ids.len() {
            return Err(ModelError::InvalidRateSet(u32::MAX));
        }
        for (i, r) in rates.iter().enumerate() {
            if r.is_empty() || r.iter().any(|v| !v.is_finite() || *v < 0.0) {
                return Err(ModelError::InvalidRateSet(source_ids[i].0));
            }
        }
        let total: usize = rates.iter().map(Vec::len).product();
        if probs.len() != total {
            return Err(ModelError::ProbabilityLength {
                expected: total,
                actual: probs.len(),
            });
        }
        for &p in &probs {
            if !p.is_finite() || p < 0.0 {
                return Err(ModelError::InvalidProbability(p));
            }
        }
        let sum: f64 = probs.iter().sum();
        if (sum - 1.0).abs() > 1e-6 {
            return Err(ModelError::ProbabilityMass(sum));
        }
        let mut strides = vec![1usize; rates.len()];
        for i in (0..rates.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * rates[i + 1].len();
        }
        Ok(Self {
            source_ids,
            rates,
            probs,
            strides,
        })
    }

    /// Build a configuration space assuming the sources are *independent*:
    /// `per_source[i]` is a list of `(rate, probability)` pairs for source `i`.
    pub fn independent(
        graph: &ApplicationGraph,
        per_source: Vec<Vec<(f64, f64)>>,
    ) -> Result<Self, ModelError> {
        let rates: Vec<Vec<f64>> = per_source
            .iter()
            .map(|s| s.iter().map(|(r, _)| *r).collect())
            .collect();
        let total: usize = rates.iter().map(Vec::len).product::<usize>().max(1);
        let mut probs = vec![1.0f64; total];
        // Mixed-radix walk over the product, multiplying marginals.
        for (flat, p) in probs.iter_mut().enumerate() {
            let mut rem = flat;
            for (i, s) in per_source.iter().enumerate() {
                let stride: usize = per_source[i + 1..]
                    .iter()
                    .map(Vec::len)
                    .product::<usize>()
                    .max(1);
                let idx = rem / stride;
                rem %= stride;
                *p *= s[idx].1;
            }
        }
        Self::new(graph, rates, probs)
    }

    /// Number of data sources.
    #[inline]
    pub fn num_sources(&self) -> usize {
        self.source_ids.len()
    }

    /// Number of input configurations `|C|`.
    #[inline]
    pub fn num_configs(&self) -> usize {
        self.probs.len()
    }

    /// Iterate all configuration ids.
    pub fn configs(&self) -> impl Iterator<Item = ConfigId> {
        (0..self.num_configs() as u32).map(ConfigId)
    }

    /// Probability `P_C(c)`.
    #[inline]
    pub fn prob(&self, c: ConfigId) -> f64 {
        self.probs[c.index()]
    }

    /// The rate set `Rᵢ` of the `i`-th source.
    #[inline]
    pub fn rate_set(&self, source_idx: usize) -> &[f64] {
        &self.rates[source_idx]
    }

    /// The sources covered by this space, in encoding order.
    #[inline]
    pub fn source_ids(&self) -> &[ComponentId] {
        &self.source_ids
    }

    /// Rate index of source `source_idx` in configuration `c`.
    #[inline]
    pub fn rate_index(&self, source_idx: usize, c: ConfigId) -> usize {
        (c.index() / self.strides[source_idx]) % self.rates[source_idx].len()
    }

    /// The output rate `Δ(xᵢ, c)` of the `i`-th source in configuration `c`
    /// (tuples per second).
    #[inline]
    pub fn source_rate(&self, source_idx: usize, c: ConfigId) -> f64 {
        self.rates[source_idx][self.rate_index(source_idx, c)]
    }

    /// The full rate vector of configuration `c`, one entry per source.
    pub fn rate_vector(&self, c: ConfigId) -> Vec<f64> {
        (0..self.num_sources())
            .map(|i| self.source_rate(i, c))
            .collect()
    }

    /// The configuration id for a vector of per-source rate indices.
    pub fn config_from_indices(&self, indices: &[usize]) -> ConfigId {
        debug_assert_eq!(indices.len(), self.num_sources());
        let flat: usize = indices.iter().zip(&self.strides).map(|(i, s)| i * s).sum();
        ConfigId(flat as u32)
    }

    /// The configuration whose rate vector dominates every other one
    /// (componentwise max). This is the safe fallback when measured rates
    /// exceed all declared configurations.
    pub fn max_config(&self) -> ConfigId {
        let indices: Vec<usize> = self
            .rates
            .iter()
            .map(|r| {
                r.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect();
        self.config_from_indices(&indices)
    }

    /// Expected (probability-weighted) rate of source `source_idx`.
    pub fn expected_source_rate(&self, source_idx: usize) -> f64 {
        self.configs()
            .map(|c| self.prob(c) * self.source_rate(source_idx, c))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn graph_two_sources() -> ApplicationGraph {
        let mut b = GraphBuilder::new();
        let s1 = b.add_source("s1");
        let s2 = b.add_source("s2");
        let p = b.add_pe("p");
        let k = b.add_sink("k");
        b.connect(s1, p, 1.0, 1.0).unwrap();
        b.connect(s2, p, 1.0, 1.0).unwrap();
        b.connect_sink(p, k).unwrap();
        b.build().unwrap()
    }

    fn graph_one_source() -> ApplicationGraph {
        let mut b = GraphBuilder::new();
        let s = b.add_source("s");
        let p = b.add_pe("p");
        let k = b.add_sink("k");
        b.connect(s, p, 1.0, 1.0).unwrap();
        b.connect_sink(p, k).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn low_high_single_source() {
        let g = graph_one_source();
        let cs = ConfigSpace::new(&g, vec![vec![4.0, 8.0]], vec![0.8, 0.2]).unwrap();
        assert_eq!(cs.num_configs(), 2);
        assert_eq!(cs.source_rate(0, ConfigId(0)), 4.0);
        assert_eq!(cs.source_rate(0, ConfigId(1)), 8.0);
        assert_eq!(cs.prob(ConfigId(0)), 0.8);
        assert!((cs.expected_source_rate(0) - (0.8 * 4.0 + 0.2 * 8.0)).abs() < 1e-12);
    }

    #[test]
    fn cartesian_product_two_sources() {
        let g = graph_two_sources();
        let cs = ConfigSpace::new(
            &g,
            vec![vec![1.0, 2.0], vec![10.0, 20.0, 30.0]],
            vec![0.1, 0.1, 0.1, 0.2, 0.2, 0.3],
        )
        .unwrap();
        assert_eq!(cs.num_configs(), 6);
        // First source is the most significant digit.
        assert_eq!(cs.rate_vector(ConfigId(0)), vec![1.0, 10.0]);
        assert_eq!(cs.rate_vector(ConfigId(2)), vec![1.0, 30.0]);
        assert_eq!(cs.rate_vector(ConfigId(3)), vec![2.0, 10.0]);
        assert_eq!(cs.rate_vector(ConfigId(5)), vec![2.0, 30.0]);
    }

    #[test]
    fn config_from_indices_round_trip() {
        let g = graph_two_sources();
        let cs = ConfigSpace::new(
            &g,
            vec![vec![1.0, 2.0], vec![10.0, 20.0, 30.0]],
            vec![1.0 / 6.0; 6],
        )
        .unwrap();
        for c in cs.configs() {
            let idx: Vec<usize> = (0..2).map(|i| cs.rate_index(i, c)).collect();
            assert_eq!(cs.config_from_indices(&idx), c);
        }
    }

    #[test]
    fn independent_probabilities_multiply() {
        let g = graph_two_sources();
        let cs = ConfigSpace::independent(
            &g,
            vec![vec![(1.0, 0.8), (2.0, 0.2)], vec![(10.0, 0.5), (20.0, 0.5)]],
        )
        .unwrap();
        assert_eq!(cs.num_configs(), 4);
        assert!((cs.prob(ConfigId(0)) - 0.4).abs() < 1e-12);
        assert!((cs.prob(ConfigId(3)) - 0.1).abs() < 1e-12);
        let total: f64 = cs.configs().map(|c| cs.prob(c)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn max_config_dominates() {
        let g = graph_two_sources();
        let cs = ConfigSpace::new(
            &g,
            vec![vec![2.0, 1.0], vec![10.0, 30.0, 20.0]],
            vec![1.0 / 6.0; 6],
        )
        .unwrap();
        let m = cs.max_config();
        let mv = cs.rate_vector(m);
        for c in cs.configs() {
            let v = cs.rate_vector(c);
            for (a, b) in mv.iter().zip(&v) {
                assert!(a >= b);
            }
        }
    }

    #[test]
    fn bad_probability_mass_rejected() {
        let g = graph_one_source();
        let err = ConfigSpace::new(&g, vec![vec![4.0, 8.0]], vec![0.8, 0.1]).unwrap_err();
        assert!(matches!(err, ModelError::ProbabilityMass(_)));
    }

    #[test]
    fn wrong_probability_length_rejected() {
        let g = graph_one_source();
        let err = ConfigSpace::new(&g, vec![vec![4.0, 8.0]], vec![1.0]).unwrap_err();
        assert_eq!(
            err,
            ModelError::ProbabilityLength {
                expected: 2,
                actual: 1
            }
        );
    }

    #[test]
    fn negative_rate_rejected() {
        let g = graph_one_source();
        let err = ConfigSpace::new(&g, vec![vec![-4.0]], vec![1.0]).unwrap_err();
        assert!(matches!(err, ModelError::InvalidRateSet(_)));
    }

    #[test]
    fn serde_round_trip() {
        let g = graph_one_source();
        let cs = ConfigSpace::new(&g, vec![vec![4.0, 8.0]], vec![0.8, 0.2]).unwrap();
        let s = serde_json::to_string(&cs).unwrap();
        let cs2: ConfigSpace = serde_json::from_str(&s).unwrap();
        assert_eq!(cs, cs2);
    }
}
