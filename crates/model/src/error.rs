//! Error type shared by all model-construction and validation code.

use std::fmt;

/// Errors produced while building or validating the application model.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum ModelError {
    /// The application graph contains a cycle (it must be a DAG).
    CyclicGraph,
    /// An edge references a component id that does not exist.
    UnknownComponent(u32),
    /// A duplicate edge between the same pair of components was added.
    DuplicateEdge { from: u32, to: u32 },
    /// An edge terminates at a data source (sources have no inputs).
    EdgeIntoSource(u32),
    /// An edge originates at a data sink (sinks have no outputs).
    EdgeFromSink(u32),
    /// A processing element has no incoming edges.
    DisconnectedPe(u32),
    /// A data source has no outgoing edges.
    DisconnectedSource(u32),
    /// A data sink has no incoming edges.
    DisconnectedSink(u32),
    /// A selectivity value is not finite or is negative.
    InvalidSelectivity { from: u32, to: u32, value: f64 },
    /// A per-tuple CPU cost is not finite or is negative.
    InvalidCpuCost { from: u32, to: u32, value: f64 },
    /// A source declares an empty or invalid rate set.
    InvalidRateSet(u32),
    /// The configuration probability table has the wrong length.
    ProbabilityLength { expected: usize, actual: usize },
    /// The configuration probabilities do not sum to (approximately) one.
    ProbabilityMass(f64),
    /// A probability value is negative or not finite.
    InvalidProbability(f64),
    /// The placement does not assign every replica of every PE.
    IncompletePlacement,
    /// A placement references an unknown host.
    UnknownHost(u32),
    /// Two replicas of the same PE are placed on the same host.
    CoLocatedReplicas { pe: u32, host: u32 },
    /// A host has a non-positive CPU capacity.
    InvalidCapacity { host: u32, value: f64 },
    /// The activation strategy has dimensions that do not match the application.
    StrategyShape {
        expected_pes: usize,
        expected_configs: usize,
        expected_k: usize,
    },
    /// The strategy leaves a PE with zero active replicas in some configuration
    /// (violates eq. 12 of the paper).
    NoActiveReplica { pe: u32, config: u32 },
    /// The billing period is non-positive.
    InvalidBillingPeriod(f64),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::CyclicGraph => write!(f, "application graph contains a cycle"),
            ModelError::UnknownComponent(id) => write!(f, "unknown component id {id}"),
            ModelError::DuplicateEdge { from, to } => {
                write!(f, "duplicate edge from component {from} to {to}")
            }
            ModelError::EdgeIntoSource(id) => {
                write!(f, "edge terminates at data source {id}")
            }
            ModelError::EdgeFromSink(id) => write!(f, "edge originates at data sink {id}"),
            ModelError::DisconnectedPe(id) => {
                write!(f, "processing element {id} has no incoming edge")
            }
            ModelError::DisconnectedSource(id) => {
                write!(f, "data source {id} has no outgoing edge")
            }
            ModelError::DisconnectedSink(id) => {
                write!(f, "data sink {id} has no incoming edge")
            }
            ModelError::InvalidSelectivity { from, to, value } => {
                write!(f, "invalid selectivity {value} on edge {from} -> {to}")
            }
            ModelError::InvalidCpuCost { from, to, value } => {
                write!(
                    f,
                    "invalid per-tuple CPU cost {value} on edge {from} -> {to}"
                )
            }
            ModelError::InvalidRateSet(id) => {
                write!(f, "source {id} declares an empty or invalid rate set")
            }
            ModelError::ProbabilityLength { expected, actual } => write!(
                f,
                "configuration probability table has length {actual}, expected {expected}"
            ),
            ModelError::ProbabilityMass(sum) => {
                write!(f, "configuration probabilities sum to {sum}, expected 1.0")
            }
            ModelError::InvalidProbability(p) => write!(f, "invalid probability value {p}"),
            ModelError::IncompletePlacement => {
                write!(f, "placement does not cover every PE replica")
            }
            ModelError::UnknownHost(id) => write!(f, "unknown host id {id}"),
            ModelError::CoLocatedReplicas { pe, host } => {
                write!(f, "two replicas of PE {pe} are co-located on host {host}")
            }
            ModelError::InvalidCapacity { host, value } => {
                write!(f, "host {host} has invalid CPU capacity {value}")
            }
            ModelError::StrategyShape {
                expected_pes,
                expected_configs,
                expected_k,
            } => write!(
                f,
                "activation strategy shape mismatch (expected {expected_pes} PEs x \
                 {expected_configs} configurations x {expected_k} replicas)"
            ),
            ModelError::NoActiveReplica { pe, config } => write!(
                f,
                "PE {pe} has no active replica in configuration {config} (violates eq. 12)"
            ),
            ModelError::InvalidBillingPeriod(t) => {
                write!(f, "invalid billing period {t} (must be positive)")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ModelError::NoActiveReplica { pe: 3, config: 1 };
        let s = e.to_string();
        assert!(s.contains("PE 3"));
        assert!(s.contains("configuration 1"));
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> = Box::new(ModelError::CyclicGraph);
        assert_eq!(e.to_string(), "application graph contains a cycle");
    }
}
