//! Failure-free expected rate propagation `Δ(xᵢ, c)` (§4.2).
//!
//! Under the paper's linear load model, the expected output rate of a PE in
//! configuration `c` is the selectivity-weighted sum of its predecessors'
//! output rates:
//!
//! ```text
//! Δ(x, c) = rate of x in c                          if x is a source
//! Δ(x, c) = Σ_{y ∈ pred(x)} δ(y, x) · Δ(y, c)       if x is a PE
//! ```
//!
//! From `Δ` follow the per-edge input loads `γ(y, x) · Δ(y, c)` used by the
//! CPU constraint (eq. 11) and the cost function (eq. 13).

use crate::app::Application;
use crate::config::ConfigId;
use crate::graph::{ComponentId, ComponentKind};

/// Precomputed `Δ(x, c)` for every component and configuration, plus the
/// derived per-PE input quantities used throughout the optimizer.
#[derive(Debug, Clone, PartialEq)]
pub struct RateTable {
    num_components: usize,
    num_configs: usize,
    /// `delta[comp][config]`, tuples per second.
    delta: Vec<f64>,
    /// Total input *tuple* rate of each PE per configuration:
    /// `Σ_{y ∈ pred} Δ(y, c)` (dense PE index major).
    pe_input_rate: Vec<f64>,
    /// Total input *CPU load* of each PE per configuration:
    /// `Σ_{y ∈ pred} γ(y, x) · Δ(y, c)` in cycles per second.
    pe_input_load: Vec<f64>,
    num_pes: usize,
}

impl RateTable {
    /// Compute the table for an application by propagating rates in
    /// topological order.
    pub fn compute(app: &Application) -> Self {
        let g = app.graph();
        let cs = app.configs();
        let nc = g.num_components();
        let nq = cs.num_configs();
        let mut delta = vec![0.0f64; nc * nq];

        for c in cs.configs() {
            for &x in g.topological_order() {
                let v = match g.component(x).kind {
                    ComponentKind::Source => {
                        let si = g.source_dense_index(x).expect("source index");
                        cs.source_rate(si, c)
                    }
                    ComponentKind::Pe => g
                        .in_edges(x)
                        .map(|e| e.selectivity * delta[e.from.index() * nq + c.index()])
                        .sum(),
                    ComponentKind::Sink => g
                        .in_edges(x)
                        .map(|e| delta[e.from.index() * nq + c.index()])
                        .sum(),
                };
                delta[x.index() * nq + c.index()] = v;
            }
        }

        let np = g.num_pes();
        let mut pe_input_rate = vec![0.0f64; np * nq];
        let mut pe_input_load = vec![0.0f64; np * nq];
        for (dense, &pe) in g.pes().iter().enumerate() {
            for c in cs.configs() {
                let mut rate = 0.0;
                let mut load = 0.0;
                for e in g.in_edges(pe) {
                    let d = delta[e.from.index() * nq + c.index()];
                    rate += d;
                    load += e.cpu_cost * d;
                }
                pe_input_rate[dense * nq + c.index()] = rate;
                pe_input_load[dense * nq + c.index()] = load;
            }
        }

        Self {
            num_components: nc,
            num_configs: nq,
            delta,
            pe_input_rate,
            pe_input_load,
            num_pes: np,
        }
    }

    /// `Δ(x, c)`: expected failure-free output rate of component `x` in
    /// configuration `c` (tuples per second).
    #[inline]
    pub fn delta(&self, x: ComponentId, c: ConfigId) -> f64 {
        self.delta[x.index() * self.num_configs + c.index()]
    }

    /// Total input tuple rate of the PE with dense index `pe_dense` in `c`:
    /// `Σ_{y ∈ pred} Δ(y, c)`. This is the per-configuration term of BIC
    /// (eq. 5) before probability weighting.
    #[inline]
    pub fn pe_input_rate(&self, pe_dense: usize, c: ConfigId) -> f64 {
        self.pe_input_rate[pe_dense * self.num_configs + c.index()]
    }

    /// Total input CPU load of one *active replica* of the PE with dense
    /// index `pe_dense` in `c`: `Σ_{y ∈ pred} γ(y, x) · Δ(y, c)` (cycles/s).
    /// This is the per-replica term of the CPU constraint (eq. 11) and the
    /// cost function (eq. 13).
    #[inline]
    pub fn pe_input_load(&self, pe_dense: usize, c: ConfigId) -> f64 {
        self.pe_input_load[pe_dense * self.num_configs + c.index()]
    }

    /// Number of configurations the table covers.
    #[inline]
    pub fn num_configs(&self) -> usize {
        self.num_configs
    }

    /// Number of PEs the table covers.
    #[inline]
    pub fn num_pes(&self) -> usize {
        self.num_pes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConfigSpace;
    use crate::graph::GraphBuilder;

    /// The paper's Fig. 1 application: two PEs in a pipeline, selectivity 1,
    /// 100 ms/tuple on 1-cycle/ms hosts (cost expressed in cycles), source
    /// rates Low = 4 t/s (p = 0.8) and High = 8 t/s (p = 0.2).
    fn fig1_app() -> Application {
        let mut b = GraphBuilder::new();
        let s = b.add_source("src");
        let p1 = b.add_pe("pe1");
        let p2 = b.add_pe("pe2");
        let k = b.add_sink("sink");
        // 100 ms per tuple on a host with capacity 1000 cycles/s -> 100 cycles.
        b.connect(s, p1, 1.0, 100.0).unwrap();
        b.connect(p1, p2, 1.0, 100.0).unwrap();
        b.connect_sink(p2, k).unwrap();
        let g = b.build().unwrap();
        let cs = ConfigSpace::new(&g, vec![vec![4.0, 8.0]], vec![0.8, 0.2]).unwrap();
        Application::new("fig1", g, cs, 300.0).unwrap()
    }

    #[test]
    fn fig1_rates_propagate() {
        let app = fig1_app();
        let rt = RateTable::compute(&app);
        let g = app.graph();
        let low = ConfigId(0);
        let high = ConfigId(1);
        assert_eq!(rt.delta(g.sources()[0], low), 4.0);
        assert_eq!(rt.delta(g.pes()[0], low), 4.0);
        assert_eq!(rt.delta(g.pes()[1], low), 4.0);
        assert_eq!(rt.delta(g.pes()[1], high), 8.0);
        assert_eq!(rt.delta(g.sinks()[0], high), 8.0);
    }

    #[test]
    fn fig1_loads_match_paper() {
        // In Fig. 1: at Low each PE needs 4 t/s * 100 ms = 0.4 s CPU per
        // second = 400 cycles/s of our 1000-cycle/s host (i.e. 40%; 80% per
        // host with two replicas of different PEs). At High: 800 cycles/s.
        let app = fig1_app();
        let rt = RateTable::compute(&app);
        assert_eq!(rt.pe_input_load(0, ConfigId(0)), 400.0);
        assert_eq!(rt.pe_input_load(0, ConfigId(1)), 800.0);
        assert_eq!(rt.pe_input_rate(1, ConfigId(1)), 8.0);
    }

    #[test]
    fn selectivity_scales_downstream() {
        let mut b = GraphBuilder::new();
        let s = b.add_source("s");
        let p1 = b.add_pe("p1");
        let p2 = b.add_pe("p2");
        let k = b.add_sink("k");
        b.connect(s, p1, 0.5, 10.0).unwrap();
        b.connect(p1, p2, 2.0, 20.0).unwrap();
        b.connect_sink(p2, k).unwrap();
        let g = b.build().unwrap();
        let cs = ConfigSpace::new(&g, vec![vec![10.0]], vec![1.0]).unwrap();
        let app = Application::new("sel", g, cs, 1.0).unwrap();
        let rt = RateTable::compute(&app);
        let g = app.graph();
        let c = ConfigId(0);
        assert_eq!(rt.delta(g.pes()[0], c), 5.0); // 10 * 0.5
        assert_eq!(rt.delta(g.pes()[1], c), 10.0); // 5 * 2.0
        assert_eq!(rt.pe_input_load(1, c), 100.0); // 5 t/s * 20 cycles
    }

    #[test]
    fn fanin_sums_contributions() {
        let mut b = GraphBuilder::new();
        let s1 = b.add_source("s1");
        let s2 = b.add_source("s2");
        let p = b.add_pe("p");
        let k = b.add_sink("k");
        b.connect(s1, p, 1.0, 5.0).unwrap();
        b.connect(s2, p, 0.5, 7.0).unwrap();
        b.connect_sink(p, k).unwrap();
        let g = b.build().unwrap();
        let cs = ConfigSpace::new(&g, vec![vec![2.0], vec![4.0]], vec![1.0]).unwrap();
        let app = Application::new("fanin", g, cs, 1.0).unwrap();
        let rt = RateTable::compute(&app);
        let c = ConfigId(0);
        let p = app.graph().pes()[0];
        assert_eq!(rt.delta(p, c), 2.0 * 1.0 + 4.0 * 0.5);
        assert_eq!(rt.pe_input_rate(0, c), 6.0);
        assert_eq!(rt.pe_input_load(0, c), 2.0 * 5.0 + 4.0 * 7.0);
    }

    #[test]
    fn rates_are_linear_in_source_rate() {
        // Doubling the source rate doubles every Δ (linear load model).
        let build = |rate: f64| {
            let mut b = GraphBuilder::new();
            let s = b.add_source("s");
            let p1 = b.add_pe("p1");
            let p2 = b.add_pe("p2");
            let k = b.add_sink("k");
            b.connect(s, p1, 0.7, 3.0).unwrap();
            b.connect(p1, p2, 1.3, 11.0).unwrap();
            b.connect_sink(p2, k).unwrap();
            let g = b.build().unwrap();
            let cs = ConfigSpace::new(&g, vec![vec![rate]], vec![1.0]).unwrap();
            Application::new("lin", g, cs, 1.0).unwrap()
        };
        let a1 = build(3.0);
        let a2 = build(6.0);
        let r1 = RateTable::compute(&a1);
        let r2 = RateTable::compute(&a2);
        let c = ConfigId(0);
        for pe in 0..2 {
            let p = a1.graph().pes()[pe];
            assert!((r2.delta(p, c) - 2.0 * r1.delta(p, c)).abs() < 1e-9);
            assert!((r2.pe_input_load(pe, c) - 2.0 * r1.pe_input_load(pe, c)).abs() < 1e-9);
        }
    }
}
