//! # laar-model
//!
//! Shared application model for the LAAR reproduction (EDBT 2014,
//! "Adaptive Fault-Tolerance for Dynamic Resource Provisioning in Distributed
//! Stream Processing Systems").
//!
//! This crate defines the vocabulary of the paper's service model (§3) and
//! formal model (§4.2):
//!
//! * [`graph::ApplicationGraph`] — the directed acyclic dataflow graph of
//!   data sources, processing elements (PEs), and data sinks, with edge
//!   annotations for selectivity `δ` and per-tuple CPU cost `γ`;
//! * [`config::ConfigSpace`] — the finite set of *input configurations*
//!   `C = R₁ × … × Rₜ` with its probability mass function `P_C`;
//! * [`placement::Placement`] — the replicated assignment `ϑ : P̃ → H` of
//!   `k` replicas of each PE to hosts with CPU capacity `K`;
//! * [`strategy::ActivationStrategy`] — the replica activation strategy
//!   `s : P̃ × C → {0, 1}` that LAAR optimizes and enforces at runtime;
//! * [`rates::RateTable`] — failure-free expected rates `Δ(x, c)` and the
//!   per-replica CPU loads derived from them;
//! * [`app::Application`] — the full customer contract (graph + descriptor +
//!   billing period `T`).
//!
//! Everything is plain data with explicit validation; the optimizer lives in
//! `laar-core` and the runtime/simulator in `laar-dsps`.

#![warn(missing_docs)]

pub mod app;
pub mod config;
pub mod error;
pub mod estimate;
pub mod graph;
pub mod placement;
pub mod rates;
pub mod strategy;

pub use app::Application;
pub use config::{ConfigId, ConfigSpace};
pub use error::ModelError;
pub use estimate::DescriptorEstimate;
pub use graph::{
    ApplicationGraph, Component, ComponentId, ComponentKind, Edge, EdgeId, GraphBuilder,
};
pub use placement::{Host, HostId, Placement, ReplicaId};
pub use rates::RateTable;
pub use strategy::ActivationStrategy;
